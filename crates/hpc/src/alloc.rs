//! Resource allocation across the three nested parallelization strategies.
//!
//! The paper (Sec. V-D) distributes added devices "across the most efficient
//! unsaturated parallelization strategy": S1 (embarrassingly parallel
//! objective-function evaluations) first, then S2 (prior/conditional
//! factorizations), then S3 (time-domain partitioned solver) — except that S3
//! is engaged *first* when the densified BTA matrix no longer fits in a single
//! device's memory.

/// How many ways each strategy layer is parallelized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrategyAllocation {
    /// Number of parallel objective-function evaluation groups (≤ n_feval).
    pub s1: usize,
    /// Number of parallel precision-matrix pipelines inside one evaluation
    /// (1 or 2: Qp and Qc can be factorized concurrently for Gaussian data).
    pub s2: usize,
    /// Number of time-domain partitions of the distributed solver.
    pub s3: usize,
}

impl StrategyAllocation {
    /// Total number of devices used.
    pub fn devices(&self) -> usize {
        self.s1 * self.s2 * self.s3
    }
}

/// Problem-side inputs to the allocation decision.
#[derive(Clone, Copy, Debug)]
pub struct AllocationInput {
    /// Number of parallel objective-function evaluations per BFGS iteration
    /// (`2·dim(θ) + 1`).
    pub n_feval: usize,
    /// Memory footprint (bytes) of one block-dense BTA precision matrix plus
    /// solver workspace on a single device.
    pub model_bytes: f64,
    /// Usable memory per device (bytes).
    pub device_bytes: f64,
    /// Number of diagonal blocks (time steps): the maximum useful S3 degree.
    pub nt: usize,
}

/// Allocate `devices` across S1/S2/S3 following the paper's policy.
pub fn allocate(devices: usize, input: &AllocationInput) -> StrategyAllocation {
    assert!(devices >= 1);
    // Minimum S3 degree forced by memory: each partition must fit on a device.
    let mut s3_min = (input.model_bytes / input.device_bytes).ceil().max(1.0) as usize;
    s3_min = s3_min.min(input.nt.max(1)).min(devices);

    // Devices left after satisfying the memory-driven S3 split.
    let budget = (devices / s3_min).max(1);
    // S1 first, saturating at the number of parallel function evaluations.
    let s1 = budget.min(input.n_feval).max(1);
    let budget = budget / s1;
    // S2 next (Qp and Qc factorized concurrently for Gaussian likelihoods).
    let s2 = if budget >= 2 { 2 } else { 1 };
    let budget = budget / s2;
    // Remaining devices extend the time-domain partitioning (bounded by nt).
    let s3 = (s3_min * budget.max(1)).min(input.nt.max(1)).max(s3_min);
    StrategyAllocation { s1, s2, s3 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n_feval: usize, nt: usize, model_gb: f64, device_gb: f64) -> AllocationInput {
        AllocationInput {
            n_feval,
            model_bytes: model_gb * 1e9,
            device_bytes: device_gb * 1e9,
            nt,
        }
    }

    #[test]
    fn single_device_uses_everything_sequentially() {
        let a = allocate(1, &input(31, 100, 1.0, 90.0));
        assert_eq!(a, StrategyAllocation { s1: 1, s2: 1, s3: 1 });
    }

    #[test]
    fn devices_go_to_s1_first() {
        let a = allocate(8, &input(31, 100, 1.0, 90.0));
        assert!(a.s1 >= 8 / (a.s2 * a.s3));
        assert!(a.s1 <= 31);
        assert!(a.devices() <= 8);
    }

    #[test]
    fn s1_saturates_at_n_feval() {
        let a = allocate(512, &input(31, 512, 1.0, 90.0));
        assert!(a.s1 <= 31);
        assert!(a.s2 <= 2);
        assert!(a.devices() <= 512);
        // With plenty of devices, S3 should now be engaged.
        assert!(a.s3 > 1);
    }

    #[test]
    fn memory_pressure_forces_s3() {
        // Model needs 300 GB, device has 90 GB: S3 must be at least 4.
        let a = allocate(8, &input(31, 64, 300.0, 90.0));
        assert!(a.s3 >= 4, "allocation {a:?} does not satisfy memory constraint");
    }

    #[test]
    fn s3_never_exceeds_time_steps() {
        let a = allocate(1024, &input(9, 16, 1.0, 90.0));
        assert!(a.s3 <= 16);
    }

    #[test]
    fn allocation_never_exceeds_devices() {
        for d in [1usize, 2, 3, 7, 16, 62, 124, 496] {
            let a = allocate(d, &input(31, 192, 10.0, 90.0));
            assert!(a.devices() <= d, "{d} devices -> {a:?}");
        }
    }
}
