//! In-process SPMD communicator.
//!
//! The original DALIA framework distributes work over MPI ranks and NCCL
//! communicators. This module provides the same collective primitives
//! (barrier, broadcast, all-reduce, gather) over operating-system threads of a
//! single process, together with per-rank traffic accounting. The INLA engine
//! expresses its three nested parallel groups (G_S1, G_S2, G_S3) against this
//! API, and the recorded message counts/volumes feed the cluster performance
//! model in [`crate::perfmodel`].

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate communication statistics of one SPMD execution.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Total number of point-to-point / collective messages sent.
    pub messages: AtomicU64,
    /// Total number of payload bytes moved.
    pub bytes: AtomicU64,
}

impl TrafficStats {
    fn record(&self, messages: u64, bytes: u64) {
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot `(messages, bytes)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.messages.load(Ordering::Relaxed), self.bytes.load(Ordering::Relaxed))
    }
}

/// One point-to-point mailbox: payloads from one rank to another.
type Mailbox = (Sender<Vec<f64>>, Receiver<Vec<f64>>);

/// Capacity of each point-to-point mailbox for a communicator of `size`
/// ranks (shared with the teardown tests, which must be able to fill one).
pub fn mailbox_capacity(size: usize) -> usize {
    size * 4 + 16
}

/// Sentinel unwind payload for ranks aborting because a peer panicked.
/// Raised via `resume_unwind`, which skips the default panic hook, so one
/// root-cause panic does not bury stderr under N-1 secondary dumps.
struct PoisonAbort;

fn poison_abort() -> ! {
    std::panic::resume_unwind(Box::new(PoisonAbort))
}

/// Shared state backing a communicator of `size` ranks.
struct CommShared {
    size: usize,
    /// Mailboxes `mailbox[to][from]`.
    mailboxes: Vec<Vec<Mailbox>>,
    /// Scratch buffer used by the collectives.
    reduce_buf: Mutex<Vec<Vec<f64>>>,
    traffic: TrafficStats,
    /// Set when any rank panics, so peers blocked in a collective or `recv`
    /// abort instead of deadlocking on a message that will never arrive.
    poisoned: AtomicBool,
}

/// Handle owned by one rank of an SPMD execution.
pub struct Communicator {
    rank: usize,
    shared: Arc<CommShared>,
}

impl Communicator {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Point-to-point send of a vector of `f64` to `dest`.
    ///
    /// Panics if the communicator is poisoned (a peer rank panicked), so a
    /// sender facing a full mailbox of a dead peer aborts instead of
    /// deadlocking.
    pub fn send(&self, dest: usize, data: Vec<f64>) {
        let bytes = (data.len() * 8) as u64;
        self.shared.traffic.record(1, bytes);
        self.send_raw(dest, data);
    }

    /// Timed-send loop with poison checks shared by `send` and the barrier.
    fn send_raw(&self, dest: usize, data: Vec<f64>) {
        let sender = &self.shared.mailboxes[dest][self.rank].0;
        let mut payload = data;
        loop {
            match sender.send_timeout(payload, Duration::from_millis(50)) {
                Ok(()) => return,
                Err(SendTimeoutError::Timeout(v)) => {
                    if self.shared.poisoned.load(Ordering::Relaxed) {
                        poison_abort();
                    }
                    payload = v;
                }
                Err(SendTimeoutError::Disconnected(_)) => panic!("receiver dropped"),
            }
        }
    }

    /// Blocking receive from `src`.
    ///
    /// Panics if the communicator is poisoned (a peer rank panicked) so the
    /// SPMD execution tears down instead of deadlocking.
    pub fn recv(&self, src: usize) -> Vec<f64> {
        let mailbox = &self.shared.mailboxes[self.rank][src].1;
        loop {
            match mailbox.recv_timeout(Duration::from_millis(50)) {
                Ok(data) => return data,
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.poisoned.load(Ordering::Relaxed) {
                        poison_abort();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => panic!("sender dropped"),
            }
        }
    }

    /// Barrier across all ranks (implemented as an all-reduce of nothing).
    pub fn barrier(&self) {
        self.all_reduce_sum(&[]);
    }

    /// All-reduce (sum) of a slice; every rank receives the element-wise sum.
    pub fn all_reduce_sum(&self, data: &[f64]) -> Vec<f64> {
        let size = self.shared.size;
        if size == 1 {
            return data.to_vec();
        }
        // Gather to rank 0 through the shared buffer, then broadcast.
        {
            let mut buf = self.shared.reduce_buf.lock();
            if buf.len() != size {
                buf.clear();
                buf.resize(size, Vec::new());
            }
            buf[self.rank] = data.to_vec();
        }
        self.shared.traffic.record(1, (data.len() * 8) as u64);
        self.naive_barrier();
        let result = {
            let buf = self.shared.reduce_buf.lock();
            let mut acc = vec![0.0; data.len()];
            for contrib in buf.iter() {
                for (a, b) in acc.iter_mut().zip(contrib) {
                    *a += b;
                }
            }
            acc
        };
        self.naive_barrier();
        result
    }

    /// Broadcast `data` from `root` to every rank; returns the broadcast value.
    pub fn broadcast(&self, root: usize, data: Option<Vec<f64>>) -> Vec<f64> {
        let size = self.shared.size;
        if size == 1 {
            return data.unwrap_or_default();
        }
        if self.rank == root {
            let payload = data.expect("root must provide data");
            for dest in 0..size {
                if dest != root {
                    self.send(dest, payload.clone());
                }
            }
            payload
        } else {
            self.recv(root)
        }
    }

    /// Gather every rank's contribution at `root` (ordered by rank). Non-root
    /// ranks receive an empty vector.
    pub fn gather(&self, root: usize, data: Vec<f64>) -> Vec<Vec<f64>> {
        let size = self.shared.size;
        if size == 1 {
            return vec![data];
        }
        if self.rank == root {
            let mut out = vec![Vec::new(); size];
            out[root] = data;
            for src in 0..size {
                if src != root {
                    out[src] = self.recv(src);
                }
            }
            out
        } else {
            self.send(root, data);
            Vec::new()
        }
    }

    /// Pairwise sense-reversing barrier based on the mailboxes (used inside
    /// the collectives so they do not depend on an external barrier).
    fn naive_barrier(&self) {
        let size = self.shared.size;
        if self.rank == 0 {
            for src in 1..size {
                let _ = self.recv(src);
            }
            for dest in 1..size {
                self.send_raw(dest, Vec::new());
            }
        } else {
            self.send_raw(0, Vec::new());
            let _ = self.recv(0);
        }
    }
}

/// Run `f` as an SPMD program over `size` in-process ranks and return the
/// per-rank results (ordered by rank) together with the traffic statistics.
pub fn run_spmd<T, F>(size: usize, f: F) -> (Vec<T>, (u64, u64))
where
    T: Send,
    F: Fn(&Communicator) -> T + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let mailboxes: Vec<Vec<Mailbox>> = (0..size)
        .map(|_| (0..size).map(|_| bounded(mailbox_capacity(size))).collect())
        .collect();
    let shared = Arc::new(CommShared {
        size,
        mailboxes,
        reduce_buf: Mutex::new(Vec::new()),
        traffic: TrafficStats::default(),
        poisoned: AtomicBool::new(false),
    });

    let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
    // Catch per-rank panics and poison the communicator so peers blocked in
    // `recv` abort rather than deadlock, then re-raise the first panic once
    // every rank has wound down.
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, slot) in results.iter_mut().enumerate() {
            let shared = Arc::clone(&shared);
            let f = &f;
            let first_panic = &first_panic;
            handles.push(scope.spawn(move || {
                let comm = Communicator { rank, shared: Arc::clone(&shared) };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm))) {
                    Ok(value) => *slot = Some(value),
                    Err(payload) => {
                        // Record the payload BEFORE publishing the poison
                        // flag so the root cause wins the first_panic slot;
                        // survivors' sentinel aborts are never recorded.
                        if payload.downcast_ref::<PoisonAbort>().is_none() {
                            let mut first = first_panic.lock();
                            if first.is_none() {
                                *first = Some(payload);
                            }
                        }
                        shared.poisoned.store(true, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("SPMD rank thread crashed outside the panic guard");
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        std::panic::resume_unwind(payload);
    }
    let traffic = shared.traffic.snapshot();
    (results.into_iter().map(|r| r.unwrap()).collect(), traffic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_sums_rank_contributions() {
        let (results, _) = run_spmd(4, |comm| {
            let data = vec![comm.rank() as f64, 1.0];
            comm.all_reduce_sum(&data)
        });
        for r in &results {
            assert_eq!(r, &vec![6.0, 4.0]);
        }
    }

    #[test]
    fn broadcast_reaches_all_ranks() {
        let (results, _) = run_spmd(3, |comm| {
            let data = if comm.rank() == 1 { Some(vec![3.5, -1.0]) } else { None };
            comm.broadcast(1, data)
        });
        for r in &results {
            assert_eq!(r, &vec![3.5, -1.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let (results, _) = run_spmd(4, |comm| comm.gather(0, vec![comm.rank() as f64]));
        assert_eq!(results[0].len(), 4);
        for (i, v) in results[0].iter().enumerate() {
            assert_eq!(v, &vec![i as f64]);
        }
        assert!(results[1].is_empty());
    }

    #[test]
    fn point_to_point_roundtrip() {
        let (results, traffic) = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, vec![1.0, 2.0, 3.0]);
                comm.recv(1)
            } else {
                let got = comm.recv(0);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, doubled.clone());
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![2.0, 4.0, 6.0]);
        let (msgs, bytes) = traffic;
        assert!(msgs >= 2);
        assert!(bytes >= 48);
    }

    #[test]
    fn single_rank_degenerate() {
        let (results, _) = run_spmd(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.all_reduce_sum(&[5.0])
        });
        assert_eq!(results[0], vec![5.0]);
    }

    #[test]
    fn rank_panic_propagates_instead_of_hanging() {
        // Rank 1 panics while the others are blocked in a collective; without
        // poisoning this would deadlock forever.
        let result = std::panic::catch_unwind(|| {
            run_spmd(3, |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                comm.all_reduce_sum(&[1.0]);
            })
        });
        assert!(result.is_err(), "the rank panic must propagate to the caller");
    }

    #[test]
    fn send_to_dead_peer_aborts_and_preserves_root_cause() {
        // Rank 1 dies immediately; rank 0 keeps sending until the bounded
        // mailbox fills. The poisoning must unblock the sender, and the
        // propagated panic must be the original, not a secondary abort.
        let caught = std::panic::catch_unwind(|| {
            run_spmd(2, |comm| {
                if comm.rank() == 1 {
                    panic!("root cause: rank 1 exploded");
                }
                // Twice the mailbox capacity so the sender is guaranteed to
                // hit a full queue even if the capacity formula changes.
                for _ in 0..2 * mailbox_capacity(comm.size()) {
                    comm.send(1, vec![0.0; 8]);
                }
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("root cause"), "root cause masked: {msg:?}");
    }

    #[test]
    fn traffic_is_recorded() {
        let (_, (msgs, bytes)) = run_spmd(3, |comm| {
            comm.all_reduce_sum(&[1.0, 2.0, 3.0, 4.0]);
        });
        assert!(msgs >= 3);
        assert!(bytes >= 3 * 32);
    }
}
