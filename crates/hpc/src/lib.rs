//! # dalia-hpc — parallel execution substrate and cluster performance model
//!
//! Stands in for the MPI + NCCL + 496-GPU substrate of the original DALIA
//! framework:
//!
//! * [`comm`] — in-process SPMD communicator (threads + channels) with
//!   barrier / broadcast / all-reduce / gather and traffic accounting,
//! * [`alloc`] — allocation of devices across the three nested
//!   parallelization strategies S1/S2/S3 following the paper's policy,
//! * [`perfmodel`] — analytic GH200/Alps and Xeon/Fritz performance model used
//!   by the benchmark harnesses to evaluate the scaling experiments at paper
//!   scale.

pub mod alloc;
pub mod comm;
pub mod perfmodel;

pub use alloc::{allocate, AllocationInput, StrategyAllocation};
pub use comm::{run_spmd, Communicator, TrafficStats};
pub use perfmodel::{
    bta_factor_flops, bta_selinv_flops, bta_solve_flops, d_bta_factor_time, d_bta_selinv_time,
    d_bta_solve_time, dalia_iteration_time, gh200, inladist_iteration_time, parallel_efficiency,
    rinla_iteration_time, sparse_chol_flops, weak_efficiency, xeon_fritz, BtaDims, HardwareProfile,
    IterationCost, ModelDims,
};
