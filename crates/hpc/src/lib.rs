//! # dalia-hpc — parallel execution substrate and cluster performance model
//!
//! Stands in for the MPI + NCCL + 496-GPU substrate of the original DALIA
//! framework:
//!
//! * [`pool`] — the work-stealing fork-join thread pool (re-export of the
//!   `dalia-pool` crate) that executes the S1/S3 fan-outs,
//! * [`comm`] — in-process SPMD communicator (threads + channels) with
//!   barrier / broadcast / all-reduce / gather and traffic accounting,
//! * [`alloc`] — allocation of devices across the three nested
//!   parallelization strategies S1/S2/S3 following the paper's policy,
//! * [`perfmodel`] — analytic GH200/Alps and Xeon/Fritz performance model used
//!   by the benchmark harnesses to evaluate the scaling experiments at paper
//!   scale.

#![warn(missing_docs)]

pub mod alloc;
pub mod comm;
pub mod perfmodel;

/// Work-stealing fork-join thread pool (re-export of the `dalia-pool` crate).
///
/// This is the execution substrate of the workspace's parallel layers: the
/// vendored `rayon` shim's `par_iter` splits adaptively onto this pool, so
/// the S1 gradient lanes (`dalia-core`) and the S3 partition eliminations
/// (`serinv::distributed`) are balanced by stealing instead of fixed
/// chunking. See the crate docs of [`dalia_pool`] for the scheduling
/// discipline (per-worker deques, LIFO pop / FIFO steal, injector channel,
/// event-parked idle workers with targeted wakes) and the determinism
/// guarantees; `crates/hpc/tests/pool_stress.rs` pins the concurrency
/// behavior.
pub mod pool {
    pub use dalia_pool::*;
}

pub use alloc::{allocate, AllocationInput, StrategyAllocation};
pub use comm::{run_spmd, Communicator, TrafficStats};
pub use perfmodel::{
    bta_factor_flops, bta_selinv_flops, bta_solve_flops, d_bta_factor_time, d_bta_selinv_time,
    d_bta_solve_time, dalia_iteration_time, gh200, inladist_iteration_time, parallel_efficiency,
    rinla_iteration_time, sparse_chol_flops, weak_efficiency, xeon_fritz, BtaDims, HardwareProfile,
    IterationCost, ModelDims,
};
