//! Stress / soak suite for the work-stealing pool (`dalia_hpc::pool`).
//!
//! The pool schedules the S1/S3 fan-outs of the solver stack, so its
//! concurrency behavior is pinned by tests, not luck:
//!
//! * **exactly-once execution** under N external producers × M stealing
//!   workers with seeded, highly non-uniform task costs,
//! * **no deadlock** under deeply nested `join` (fork-join trees several
//!   levels deeper than the worker count),
//! * **panic propagation**: a panicking task unwinds at its fork point
//!   without poisoning the pool — subsequent work schedules normally.
//!
//! Every test runs under a watchdog so a scheduling deadlock fails the suite
//! instead of hanging CI forever.

use dalia_hpc::pool::{self, ThreadPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Run `f` on a fresh thread and panic if it has not finished within
/// `secs` seconds — the deadlock guard for every scheduling test.
fn with_watchdog<F>(secs: u64, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => handle.join().expect("watchdogged test panicked"),
        Err(_) => panic!("deadlock suspected: test did not finish within {secs}s"),
    }
}

/// Deterministic splitmix-style cost sequence: most tasks are cheap, a few
/// are hundreds of times more expensive — the S1/S3 imbalance shape.
fn seeded_costs(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) % 100;
            if r < 90 {
                50 + r // cheap: ~50..140 spin units
            } else {
                20_000 + (state >> 40) % 20_000 // heavy tail
            }
        })
        .collect()
}

/// Spin for `units` of deterministic work (not elidable by the optimizer).
fn busy(units: u64) -> u64 {
    let mut acc = units;
    for i in 0..units {
        acc = acc.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

#[test]
fn producers_and_stealers_run_every_task_exactly_once() {
    with_watchdog(120, || {
        const PRODUCERS: usize = 4;
        const TASKS_PER_PRODUCER: usize = 256;
        let pool = Arc::new(ThreadPool::new(4));
        let counters: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..PRODUCERS * TASKS_PER_PRODUCER).map(|_| AtomicUsize::new(0)).collect(),
        );

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let pool = Arc::clone(&pool);
                let counters = Arc::clone(&counters);
                s.spawn(move || {
                    let costs = seeded_costs(TASKS_PER_PRODUCER, 0xC0FFEE + p as u64);
                    // Each external producer drives its own fork-join region
                    // on the shared pool; workers steal across regions.
                    pool.scope(|scope| {
                        for (t, &cost) in costs.iter().enumerate() {
                            let counters = Arc::clone(&counters);
                            scope.spawn(move || {
                                busy(cost);
                                counters[p * TASKS_PER_PRODUCER + t]
                                    .fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });

        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} ran a wrong number of times");
        }
    });
}

#[test]
fn nested_joins_do_not_deadlock() {
    with_watchdog(120, || {
        // A fork-join tree 12 levels deep on a 3-worker pool: far more live
        // forks than workers, so completion requires the pop-back / steal /
        // help-while-waiting discipline to be sound.
        fn tree_sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 1 {
                return range.start;
            }
            let mid = range.start + len / 2;
            let (a, b) = pool::join(|| tree_sum(range.start..mid), || tree_sum(mid..range.end));
            a + b
        }
        let pool = ThreadPool::new(3);
        let total = pool.install(|| tree_sum(0..4096));
        assert_eq!(total, 4096 * 4095 / 2);
    });
}

#[test]
fn nested_join_under_scope_under_join_does_not_deadlock() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(2);
        let sum = AtomicUsize::new(0);
        let (left, ()) = pool.join(
            || {
                // join -> scope -> join nesting on the same 2 workers.
                pool::scope(|s| {
                    let sum = &sum;
                    for i in 0..16usize {
                        s.spawn(move || {
                            let (a, b) = pool::join(|| i, || i * 2);
                            sum.fetch_add(a + b, Ordering::Relaxed);
                        });
                    }
                });
                7usize
            },
            || {
                busy(10_000);
            },
        );
        assert_eq!(left, 7);
        assert_eq!(sum.load(Ordering::Relaxed), (0..16).map(|i| 3 * i).sum::<usize>());
    });
}

#[test]
fn panicking_task_propagates_without_poisoning_the_pool() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(4);

        // join: panic in the stolen/pushed half reaches the caller.
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| busy(1000), || -> u64 { panic!("join-task failure") });
        }));
        let payload = r.expect_err("join panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "join-task failure");

        // scope: one panicking task among many; the rest complete, the panic
        // surfaces at the scope exit.
        let completed = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let completed = &completed;
                for i in 0..64usize {
                    s.spawn(move || {
                        if i == 17 {
                            panic!("scope-task failure");
                        }
                        busy(200);
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err(), "scope panic must propagate");
        assert_eq!(completed.load(Ordering::Relaxed), 63);

        // The pool is not poisoned: a full imbalanced workload still runs
        // every task exactly once afterwards.
        let costs = seeded_costs(512, 0xFACADE);
        let counters: Vec<AtomicUsize> = (0..costs.len()).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            let counters = &counters;
            for (t, &cost) in costs.iter().enumerate() {
                s.spawn(move || {
                    busy(cost);
                    counters[t].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        let (a, b) = pool.join(|| 2 + 2, || 3 * 3);
        assert_eq!((a, b), (4, 9));
    });
}

#[test]
fn join_results_are_correct_under_heavy_stealing_churn() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(4);
        // Repeated imbalanced trees: left side trivial, right side heavy, so
        // the right subtree is stolen constantly; results must stay exact.
        let out = pool.install(|| {
            let mut total = 0u64;
            for round in 0..50u64 {
                let (l, r) = pool::join(
                    || round,
                    || {
                        let (a, b) = pool::join(|| busy(5_000) & 1, || busy(5_000) & 1);
                        a + b + round
                    },
                );
                total += l + r;
            }
            total
        });
        // Exact value: sum over rounds of (round + round + parity terms).
        let parity = pool.install(|| busy(5_000) & 1) * 2;
        let expected: u64 = (0..50).map(|r| 2 * r + parity).sum();
        assert_eq!(out, expected);
    });
}

#[test]
fn env_thread_count_is_respected_by_instance_pools() {
    with_watchdog(60, || {
        // Instance pools pin exact worker counts (the global pool reads
        // DALIA_NUM_THREADS once per process; tests use instances so they
        // cannot interfere with each other).
        for n in [1, 2, 5] {
            let pool = ThreadPool::new(n);
            assert_eq!(pool.num_threads(), n);
            // All work lands on exactly that pool's workers.
            let distinct = pool.install(|| {
                use std::collections::HashSet;
                use std::sync::Mutex;
                let ids = Mutex::new(HashSet::new());
                pool::scope(|s| {
                    let ids = &ids;
                    for _ in 0..64 {
                        s.spawn(move || {
                            ids.lock().unwrap().insert(std::thread::current().id());
                            busy(2_000);
                        });
                    }
                });
                let len = ids.lock().unwrap().len();
                len
            });
            assert!(distinct <= n, "{distinct} distinct workers on a {n}-thread pool");
        }
    });
}
