//! Stress / soak suite for the work-stealing pool (`dalia_hpc::pool`).
//!
//! The pool schedules the S1/S3 fan-outs of the solver stack, so its
//! concurrency behavior is pinned by tests, not luck:
//!
//! * **exactly-once execution** under N external producers × M stealing
//!   workers with seeded, highly non-uniform task costs,
//! * **no deadlock** under deeply nested `join` (fork-join trees several
//!   levels deeper than the worker count),
//! * **panic propagation**: a panicking task unwinds at its fork point
//!   without poisoning the pool — subsequent work schedules normally,
//! * **event-parking edge cases** (pool v2): idle workers genuinely park
//!   (no polling), spurious wakes never stall progress, park/unpark races
//!   with pool shutdown cannot hang `Drop`, and a skewed 1-big/N-tiny
//!   partition layout completes a full S3 pass (factorize + solve + selected
//!   inverse) within 2× of the balanced layout's wall time at 4 threads
//!   thanks to stealable `d_pobtaf`/`d_pobtas`/`d_pobtasi` interiors.
//!
//! Every test runs under a watchdog so a scheduling deadlock fails the suite
//! instead of hanging CI forever.

use dalia_hpc::pool::{self, ThreadPool};
use serinv::testing::{test_matrix, test_rhs};
use serinv::{
    d_pobtaf_scheduled, d_pobtas_scheduled, d_pobtasi_scheduled, InteriorSchedule, Partitioning,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run `f` on a fresh thread and panic if it has not finished within
/// `secs` seconds — the deadlock guard for every scheduling test.
fn with_watchdog<F>(secs: u64, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => handle.join().expect("watchdogged test panicked"),
        Err(_) => panic!("deadlock suspected: test did not finish within {secs}s"),
    }
}

/// Deterministic splitmix-style cost sequence: most tasks are cheap, a few
/// are hundreds of times more expensive — the S1/S3 imbalance shape.
fn seeded_costs(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) % 100;
            if r < 90 {
                50 + r // cheap: ~50..140 spin units
            } else {
                20_000 + (state >> 40) % 20_000 // heavy tail
            }
        })
        .collect()
}

/// Spin for `units` of deterministic work (not elidable by the optimizer).
fn busy(units: u64) -> u64 {
    let mut acc = units;
    for i in 0..units {
        acc = acc.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

#[test]
fn producers_and_stealers_run_every_task_exactly_once() {
    with_watchdog(120, || {
        const PRODUCERS: usize = 4;
        const TASKS_PER_PRODUCER: usize = 256;
        let pool = Arc::new(ThreadPool::new(4));
        let counters: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..PRODUCERS * TASKS_PER_PRODUCER).map(|_| AtomicUsize::new(0)).collect(),
        );

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let pool = Arc::clone(&pool);
                let counters = Arc::clone(&counters);
                s.spawn(move || {
                    let costs = seeded_costs(TASKS_PER_PRODUCER, 0xC0FFEE + p as u64);
                    // Each external producer drives its own fork-join region
                    // on the shared pool; workers steal across regions.
                    pool.scope(|scope| {
                        for (t, &cost) in costs.iter().enumerate() {
                            let counters = Arc::clone(&counters);
                            scope.spawn(move || {
                                busy(cost);
                                counters[p * TASKS_PER_PRODUCER + t]
                                    .fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });

        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} ran a wrong number of times");
        }
    });
}

#[test]
fn nested_joins_do_not_deadlock() {
    with_watchdog(120, || {
        // A fork-join tree 12 levels deep on a 3-worker pool: far more live
        // forks than workers, so completion requires the pop-back / steal /
        // help-while-waiting discipline to be sound.
        fn tree_sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 1 {
                return range.start;
            }
            let mid = range.start + len / 2;
            let (a, b) = pool::join(|| tree_sum(range.start..mid), || tree_sum(mid..range.end));
            a + b
        }
        let pool = ThreadPool::new(3);
        let total = pool.install(|| tree_sum(0..4096));
        assert_eq!(total, 4096 * 4095 / 2);
    });
}

#[test]
fn nested_join_under_scope_under_join_does_not_deadlock() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(2);
        let sum = AtomicUsize::new(0);
        let (left, ()) = pool.join(
            || {
                // join -> scope -> join nesting on the same 2 workers.
                pool::scope(|s| {
                    let sum = &sum;
                    for i in 0..16usize {
                        s.spawn(move || {
                            let (a, b) = pool::join(|| i, || i * 2);
                            sum.fetch_add(a + b, Ordering::Relaxed);
                        });
                    }
                });
                7usize
            },
            || {
                busy(10_000);
            },
        );
        assert_eq!(left, 7);
        assert_eq!(sum.load(Ordering::Relaxed), (0..16).map(|i| 3 * i).sum::<usize>());
    });
}

#[test]
fn panicking_task_propagates_without_poisoning_the_pool() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(4);

        // join: panic in the stolen/pushed half reaches the caller.
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| busy(1000), || -> u64 { panic!("join-task failure") });
        }));
        let payload = r.expect_err("join panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "join-task failure");

        // scope: one panicking task among many; the rest complete, the panic
        // surfaces at the scope exit.
        let completed = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let completed = &completed;
                for i in 0..64usize {
                    s.spawn(move || {
                        if i == 17 {
                            panic!("scope-task failure");
                        }
                        busy(200);
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err(), "scope panic must propagate");
        assert_eq!(completed.load(Ordering::Relaxed), 63);

        // The pool is not poisoned: a full imbalanced workload still runs
        // every task exactly once afterwards.
        let costs = seeded_costs(512, 0xFACADE);
        let counters: Vec<AtomicUsize> = (0..costs.len()).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            let counters = &counters;
            for (t, &cost) in costs.iter().enumerate() {
                s.spawn(move || {
                    busy(cost);
                    counters[t].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        let (a, b) = pool.join(|| 2 + 2, || 3 * 3);
        assert_eq!((a, b), (4, 9));
    });
}

#[test]
fn join_results_are_correct_under_heavy_stealing_churn() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(4);
        // Repeated imbalanced trees: left side trivial, right side heavy, so
        // the right subtree is stolen constantly; results must stay exact.
        let out = pool.install(|| {
            let mut total = 0u64;
            for round in 0..50u64 {
                let (l, r) = pool::join(
                    || round,
                    || {
                        let (a, b) = pool::join(|| busy(5_000) & 1, || busy(5_000) & 1);
                        a + b + round
                    },
                );
                total += l + r;
            }
            total
        });
        // Exact value: sum over rounds of (round + round + parity terms).
        let parity = pool.install(|| busy(5_000) & 1) * 2;
        let expected: u64 = (0..50).map(|r| 2 * r + parity).sum();
        assert_eq!(out, expected);
    });
}

#[test]
fn idle_pool_parks_and_spurious_wakes_do_not_stall_progress() {
    with_watchdog(120, || {
        let pool = ThreadPool::new(3);
        // Let the pool go fully idle: all workers must end up parked (the
        // event-parking protocol, not a timed poll).
        pool.install(|| busy(1_000));
        std::thread::sleep(Duration::from_millis(80));
        let idle = pool.wake_stats();
        assert!(idle.parks >= 3, "idle workers must park, saw {idle:?}");

        // Hammer the pool from several external threads with tiny tasks:
        // each injector send issues a targeted wake, workers race for the
        // job, and the losers take spurious wakes. Every task must still
        // run exactly once, and the counters must stay consistent.
        const ROUNDS: usize = 200;
        const EXTERNALS: usize = 3;
        let ran = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..EXTERNALS {
                let pool = &pool;
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let ran = Arc::clone(&ran);
                        pool.install(move || {
                            busy(50);
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(ran.load(Ordering::Relaxed), ROUNDS * EXTERNALS);
        let end = pool.wake_stats();
        assert!(end.parks >= idle.parks, "park counter must be monotonic");
        assert!(
            end.injector_wakes > idle.injector_wakes,
            "external submissions to an idle pool must issue targeted injector wakes: {end:?}"
        );
        // Spurious wakes are permitted but bounded: every spurious wake is a
        // worker that lost a race for one published job, so the count cannot
        // exceed the total wakes issued.
        let wakes = end.push_wakes + end.injector_wakes + end.completion_wakes;
        assert!(
            end.spurious_wakes <= wakes,
            "spurious wakes ({}) exceed total issued wakes ({wakes}): {end:?}",
            end.spurious_wakes
        );
    });
}

#[test]
fn park_unpark_races_with_shutdown_do_not_hang_drop() {
    // The nastiest window: workers heading into (or sitting in) a park while
    // the pool is dropped mid-traffic. The shutdown broadcast must win every
    // interleaving — a lost wake here hangs `Drop` forever, which the
    // watchdog turns into a failure.
    with_watchdog(120, || {
        for round in 0..200 {
            let pool = ThreadPool::new(4);
            // Mix of detached work (may still be queued at drop) and a
            // completed install, so drop races against every worker state:
            // executing, scanning, announcing, parked.
            for i in 0..8 {
                pool.spawn(move || {
                    busy(10 + (i % 3) * 30);
                });
            }
            pool.install(|| busy(20));
            if round % 3 == 0 {
                // Sometimes give workers time to park before dropping;
                // sometimes drop while they are mid-scan.
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(pool); // must never hang
        }
    });
}

#[test]
fn skewed_partition_layout_completes_within_2x_of_balanced() {
    // The tentpole property: with stealable interiors, a 1-big/N-tiny
    // partition layout (the worst case that used to serialize the whole S3
    // fan-out on one worker) finishes within 2x of the balanced layout's
    // wall time at 4 threads — for the full S3 pass (factorize + solve +
    // selected inverse), not just factorization. Both layouts process the
    // same matrix, so on a single hardware core the ratio is ~1 by
    // construction; on multi-core hosts the bound fails without interior
    // splitting (the big partition alone costs ~3-4x the balanced critical
    // path).
    with_watchdog(300, || {
        let (n, b, a) = (18, 64, 3);
        let m = test_matrix(n, b, a, 0xBA1A);
        let rhs0 = test_rhs(m.dim(), 8);
        // Big partition in the middle: interior partitions carry the
        // left-separator fill, the shape worth stealing from.
        let skewed = Partitioning::from_sizes(&[1, 13, 1, 1, 1, 1]);
        let balanced = Partitioning::even(n, 6);
        let pool = ThreadPool::new(4);

        let time_layout = |part: &Partitioning| {
            // Warmup, then best-of-3, each run a full S3 pass.
            let run = || {
                pool.install(|| {
                    let f = d_pobtaf_scheduled(&m, part, InteriorSchedule::Stealable)
                        .expect("factorization");
                    let mut rhs = rhs0.clone();
                    d_pobtas_scheduled(&f, &mut rhs, InteriorSchedule::Stealable);
                    let sel = d_pobtasi_scheduled(&f, InteriorSchedule::Stealable);
                    f.logdet().unwrap() + rhs.as_slice()[0] + sel.blocks.diag[0].as_slice()[0]
                })
            };
            let _ = run();
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(run());
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };

        let balanced_secs = time_layout(&balanced);
        let skewed_secs = time_layout(&skewed);
        // 2x with a small absolute floor so micro-second-scale jitter on
        // fast machines cannot flake the bound.
        let bound = (2.0 * balanced_secs).max(balanced_secs + 0.005);
        assert!(
            skewed_secs <= bound,
            "skewed layout took {skewed_secs:.4}s vs balanced {balanced_secs:.4}s \
             (bound {bound:.4}s) — stealable interiors are not spreading the big partition"
        );
    });
}

#[test]
fn env_thread_count_is_respected_by_instance_pools() {
    with_watchdog(60, || {
        // Instance pools pin exact worker counts (the global pool reads
        // DALIA_NUM_THREADS once per process; tests use instances so they
        // cannot interfere with each other).
        for n in [1, 2, 5] {
            let pool = ThreadPool::new(n);
            assert_eq!(pool.num_threads(), n);
            // All work lands on exactly that pool's workers.
            let distinct = pool.install(|| {
                use std::collections::HashSet;
                use std::sync::Mutex;
                let ids = Mutex::new(HashSet::new());
                pool::scope(|s| {
                    let ids = &ids;
                    for _ in 0..64 {
                        s.spawn(move || {
                            ids.lock().unwrap().insert(std::thread::current().id());
                            busy(2_000);
                        });
                    }
                });
                let len = ids.lock().unwrap().len();
                len
            });
            assert!(distinct <= n, "{distinct} distinct workers on a {n}-thread pool");
        }
    });
}
