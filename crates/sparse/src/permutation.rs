//! Permutations of vectors and symmetric permutations of sparse matrices.
//!
//! The coregional-model reordering of Sec. IV-B.1 of the paper (grouping all
//! response variables of a time step together and pushing all fixed effects to
//! the end) is expressed as a [`Permutation`] applied to the joint precision
//! matrix. The permutation is computed once and re-applied cheaply for every
//! new hyperparameter configuration.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// A permutation `p` mapping new index `i` to old index `p[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `perm[new] = old`.
    perm: Vec<usize>,
    /// `inv[old] = new`.
    inv: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Self { inv: perm.clone(), perm }
    }

    /// Build from the forward map `perm[new] = old`. Panics if not a
    /// permutation.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n, "permutation entry out of range");
            assert_eq!(inv[old], usize::MAX, "duplicate entry in permutation");
            inv[old] = new;
        }
        Self { perm, inv }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` when permuting zero elements.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Forward map `new -> old`.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Old index of new position `new`.
    #[inline]
    pub fn old_of_new(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// New index of old position `old`.
    #[inline]
    pub fn new_of_old(&self, old: usize) -> usize {
        self.inv[old]
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { perm: self.inv.clone(), inv: self.perm.clone() }
    }

    /// Apply to a vector: `out[new] = x[perm[new]]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Apply the inverse to a vector: `out[old] = x[new_of_old(old)]`.
    pub fn apply_inv_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        self.inv.iter().map(|&new| x[new]).collect()
    }

    /// Symmetric permutation of a square sparse matrix: `B = P A Pᵀ`,
    /// i.e. `B[new_i, new_j] = A[perm[new_i], perm[new_j]]`.
    pub fn apply_sym(&self, a: &CsrMatrix) -> CsrMatrix {
        assert_eq!(a.nrows(), a.ncols(), "symmetric permutation requires square matrix");
        assert_eq!(a.nrows(), self.len(), "permutation length mismatch");
        let n = self.len();
        let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
        for old_r in 0..n {
            let new_r = self.inv[old_r];
            for (old_c, v) in a.row_iter(old_r) {
                coo.push(new_r, self.inv[old_c], v);
            }
        }
        coo.to_csr()
    }

    /// Permute the rows of a (possibly rectangular) matrix: `B = P A`,
    /// `B[new, :] = A[perm[new], :]`.
    pub fn apply_rows(&self, a: &CsrMatrix) -> CsrMatrix {
        assert_eq!(a.nrows(), self.len());
        let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for new_r in 0..a.nrows() {
            let old_r = self.perm[new_r];
            for (c, v) in a.row_iter(old_r) {
                coo.push(new_r, c, v);
            }
        }
        coo.to_csr()
    }

    /// Permute the columns of a matrix: `B = A Pᵀ` so that
    /// `B[:, new] = A[:, perm[new]]`.
    pub fn apply_cols(&self, a: &CsrMatrix) -> CsrMatrix {
        assert_eq!(a.ncols(), self.len());
        let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for r in 0..a.nrows() {
            for (old_c, v) in a.row_iter(r) {
                coo.push(r, self.inv[old_c], v);
            }
        }
        coo.to_csr()
    }

    /// Compose two permutations: applying `self` after `other`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let perm: Vec<usize> = (0..self.len()).map(|i| other.perm[self.perm[i]]).collect();
        Permutation::from_vec(perm)
    }
}

/// The coregional-model permutation of the paper (Sec. IV-B.1, Fig. 2c).
///
/// The joint precision of Eq. (11) is ordered by response variable
/// (`nv` blocks, each of size `ns*nt + nr`). This permutation reorders to
/// time-major ordering: for every time step the `nv*ns` spatial unknowns of
/// all response variables are contiguous, and all `nv*nr` fixed effects are
/// accumulated at the end — recovering a BTA pattern with diagonal block size
/// `b = nv*ns` and arrowhead size `a = nv*nr`.
pub fn coregional_permutation(nv: usize, ns: usize, nt: usize, nr: usize) -> Permutation {
    let per_process = ns * nt + nr;
    let total = nv * per_process;
    let mut perm = Vec::with_capacity(total);
    // Spatio-temporal part: time outer, variable middle, space inner.
    for t in 0..nt {
        for v in 0..nv {
            let base = v * per_process + t * ns;
            for s in 0..ns {
                perm.push(base + s);
            }
        }
    }
    // Fixed effects of every process at the end.
    for v in 0..nv {
        let base = v * per_process + ns * nt;
        for r in 0..nr {
            perm.push(base + r);
        }
    }
    Permutation::from_vec(perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.apply_vec(&x), x);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn vec_roundtrip() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]);
        let x = vec![10.0, 20.0, 30.0, 40.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(p.apply_inv_vec(&y), x);
        assert_eq!(p.inverse().apply_vec(&y), x);
    }

    #[test]
    #[should_panic]
    fn rejects_duplicates() {
        let _ = Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn symmetric_permutation_matches_dense() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        coo.push(2, 2, 3.0);
        coo.push(0, 2, 4.0);
        coo.push(2, 0, 4.0);
        let a = coo.to_csr();
        let p = Permutation::from_vec(vec![2, 1, 0]);
        let b = p.apply_sym(&a);
        let bd = b.to_dense();
        assert_eq!(bd[(0, 0)], 3.0);
        assert_eq!(bd[(2, 2)], 1.0);
        assert_eq!(bd[(0, 2)], 4.0);
        // Quadratic-form invariance: x' B x == y' A y with y[perm[i]] = x[i].
        let x = vec![1.0, 2.0, 3.0];
        let y = p.apply_inv_vec(&x);
        assert!((b.quadratic_form(&x) - a.quadratic_form(&y)).abs() < 1e-14);
    }

    #[test]
    fn row_and_col_permutation() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 5.0);
        let a = coo.to_csr();
        let pr = Permutation::from_vec(vec![1, 0]);
        let b = pr.apply_rows(&a);
        assert_eq!(b.get(0, 2), 5.0);
        assert_eq!(b.get(1, 0), 1.0);

        let pc = Permutation::from_vec(vec![2, 1, 0]);
        let c = pc.apply_cols(&a);
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(1, 0), 5.0);
    }

    #[test]
    fn coregional_permutation_layout() {
        // nv=2 processes, ns=2 spatial nodes, nt=2 time steps, nr=1 fixed effect.
        let p = coregional_permutation(2, 2, 2, 1);
        assert_eq!(p.len(), 2 * (2 * 2 + 1));
        // First block: time 0 of process 0 then time 0 of process 1.
        assert_eq!(&p.as_slice()[0..4], &[0, 1, 5, 6]);
        // Second block: time 1 of both processes.
        assert_eq!(&p.as_slice()[4..8], &[2, 3, 7, 8]);
        // Fixed effects at the end: index 4 (proc 0) and 9 (proc 1).
        assert_eq!(&p.as_slice()[8..10], &[4, 9]);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let p1 = Permutation::from_vec(vec![1, 2, 0]);
        let p2 = Permutation::from_vec(vec![2, 0, 1]);
        let x = vec![1.0, 2.0, 3.0];
        let seq = p1.apply_vec(&p2.apply_vec(&x));
        let comp = p1.compose(&p2);
        assert_eq!(comp.apply_vec(&x), seq);
    }
}
