//! Coordinate (triplet) sparse format used for assembly.
//!
//! FEM assembly, Kronecker-product construction and the design-matrix builder
//! all accumulate triplets and convert once to CSR/CSC. Duplicate entries are
//! summed during conversion, matching the usual FEM assembly semantics.

use crate::csr::CsrMatrix;
use dalia_la::Matrix;

/// Sparse matrix in coordinate (triplet) format.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Empty matrix with pre-reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Build from parallel triplet slices.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        let mut m = Self::with_capacity(nrows, ncols, vals.len());
        for i in 0..rows.len() {
            m.push(rows[i], cols[i], vals[i]);
        }
        m
    }

    /// Append one entry. Duplicates are allowed and summed on conversion.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.nrows && col < self.ncols, "triplet out of range");
        if val != 0.0 {
            self.rows.push(row);
            self.cols.push(col);
            self.vals.push(val);
        }
    }

    /// Append a dense block at offset `(r0, c0)`.
    pub fn push_dense_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        for j in 0..block.ncols() {
            for i in 0..block.nrows() {
                let v = block[(i, j)];
                if v != 0.0 {
                    self.push(r0 + i, c0 + j, v);
                }
            }
        }
    }

    /// Number of stored (possibly duplicated) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Matrix shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Raw triplet views `(rows, cols, vals)`.
    pub fn triplets(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Convert to CSR, summing duplicates and dropping explicit zeros produced
    /// by cancellation is *not* performed (pattern stability matters for the
    /// repeated-assembly use case).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(self)
    }

    /// Convert to a dense matrix (testing / small problems only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for k in 0..self.vals.len() {
            m[(self.rows[k], self.cols[k])] += self.vals[k];
        }
        m
    }

    /// Build a COO from the non-zero entries of a dense matrix.
    pub fn from_dense(m: &Matrix, tol: f64) -> Self {
        let mut coo = Self::new(m.nrows(), m.ncols());
        for j in 0..m.ncols() {
            for i in 0..m.nrows() {
                if m[(i, j)].abs() > tol {
                    coo.push(i, j, m[(i, j)]);
                }
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_shape() {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 0, 1.0);
        m.push(2, 3, 5.0);
        m.push(1, 1, 0.0); // explicit zero dropped
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.shape(), (3, 4));
    }

    #[test]
    fn duplicates_sum_in_dense() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, 1.0);
        m.push(0, 1, 2.5);
        let d = m.to_dense();
        assert_eq!(d[(0, 1)], 3.5);
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]);
        let coo = CooMatrix::from_dense(&d, 0.0);
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn push_dense_block() {
        let mut m = CooMatrix::new(4, 4);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 4.0]]);
        m.push_dense_block(1, 2, &b);
        let d = m.to_dense();
        assert_eq!(d[(1, 2)], 1.0);
        assert_eq!(d[(2, 3)], 4.0);
        assert_eq!(d[(2, 2)], 0.0);
    }

    #[test]
    fn from_triplets() {
        let m = CooMatrix::from_triplets(2, 2, &[0, 1, 1], &[0, 0, 1], &[1.0, 2.0, 3.0]);
        let d = m.to_dense();
        assert_eq!(d[(1, 0)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
    }
}
