//! # dalia-sparse — sparse matrix algebra and the general sparse solver baseline
//!
//! Sparse formats and kernels used by the DALIA-RS model layer:
//!
//! * [`coo::CooMatrix`] — triplet assembly format,
//! * [`csr::CsrMatrix`] — compressed sparse rows with SpMV, block extraction and
//!   the O(nnz) sparse→block-dense mapping of the paper's Sec. IV-F,
//! * [`ops`] — addition, Gustavson SpGEMM, `AᵀDA` congruence products,
//!   Kronecker products and stacking,
//! * [`permutation`] — symmetric permutations including the coregional
//!   time-major reordering (Fig. 2c),
//! * [`cholesky`] — simplicial up-looking sparse Cholesky with elimination
//!   tree, solves, log-determinant and Takahashi selected inversion: the
//!   general-purpose solver standing in for PARDISO in the R-INLA baseline.

pub mod cholesky;
pub mod coo;
pub mod csr;
pub mod ops;
pub mod permutation;

pub use cholesky::{elimination_tree, CholeskySymbolic, SparseCholesky};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use permutation::{coregional_permutation, Permutation};

/// Errors produced by sparse kernels.
#[derive(Clone, Debug, PartialEq)]
pub enum SparseError {
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        nrows: usize,
        /// Number of columns of the offending matrix.
        ncols: usize,
    },
    /// A Cholesky pivot was non-positive.
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Human-readable description.
        context: String,
    },
    /// A numeric refactorization was attempted with a symbolic analysis that
    /// was computed for a different sparsity pattern.
    PatternMismatch,
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is not square ({nrows}x{ncols})")
            }
            SparseError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix not positive definite at pivot {pivot} (value {value:.3e})")
            }
            SparseError::DimensionMismatch { context } => write!(f, "dimension mismatch: {context}"),
            SparseError::PatternMismatch => {
                write!(f, "symbolic analysis does not match the matrix sparsity pattern")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(SparseError::NotSquare { nrows: 2, ncols: 3 }.to_string().contains("2x3"));
        assert!(SparseError::NotPositiveDefinite { pivot: 0, value: -1.0 }
            .to_string()
            .contains("pivot 0"));
        assert!(SparseError::DimensionMismatch { context: "spmv".into() }
            .to_string()
            .contains("spmv"));
    }
}
