//! General simplicial sparse Cholesky factorization (up-looking) with
//! elimination-tree symbolic analysis, triangular solves, log-determinant and
//! Takahashi selected inversion.
//!
//! This is the "PARDISO substitute": it plays the role of the general sparse
//! direct solver used by R-INLA in the paper's baseline comparisons. It does
//! not exploit the block-tridiagonal-arrowhead structure — that is exactly the
//! point of the comparison against the structured solver in the `serinv`
//! crate.
//!
//! Like the real PARDISO, the factorization is split into a *symbolic* phase
//! ([`SparseCholesky::analyze`], which computes the elimination tree and the
//! non-zero pattern of the factor) and a *numeric* phase
//! ([`SparseCholesky::factor_with`], which fills the pattern with values).
//! INLA evaluates dozens-to-hundreds of precision matrices with the identical
//! sparsity pattern (one per hyperparameter value θ), so callers that cache
//! the [`CholeskySymbolic`] pay the symbolic cost once per pattern instead of
//! once per evaluation.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::SparseError;

const NONE: usize = usize::MAX;

/// Elimination tree of a symmetric matrix given its lower triangle stored by
/// rows (equivalently the upper triangle by columns).
pub fn elimination_tree(lower: &CsrMatrix) -> Vec<usize> {
    let n = lower.nrows();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for i in 0..n {
        for (j, _) in lower.row_iter(i) {
            if j >= i {
                continue;
            }
            let mut jj = j;
            while jj != NONE && jj < i {
                let next = ancestor[jj];
                ancestor[jj] = i;
                if next == NONE {
                    parent[jj] = i;
                    break;
                }
                jj = next;
            }
        }
    }
    parent
}

/// Reach of row `i` in the elimination tree: the non-zero pattern (columns
/// `< i`) of row `i` of the Cholesky factor. Returns the pattern sorted in
/// ascending column order.
fn ereach(lower: &CsrMatrix, i: usize, parent: &[usize], stamp: &mut [usize]) -> Vec<usize> {
    let mut pattern = Vec::new();
    stamp[i] = i;
    for (j, _) in lower.row_iter(i) {
        if j >= i {
            continue;
        }
        let mut jj = j;
        while stamp[jj] != i {
            pattern.push(jj);
            stamp[jj] = i;
            if parent[jj] == NONE {
                break;
            }
            jj = parent[jj];
            if jj >= i {
                break;
            }
        }
    }
    pattern.sort_unstable();
    pattern
}

/// Reusable symbolic analysis of a sparse Cholesky factorization: the
/// elimination tree and the full non-zero pattern of the factor, valid for
/// every matrix sharing the analyzed sparsity pattern.
#[derive(Clone, Debug)]
pub struct CholeskySymbolic {
    n: usize,
    /// Elimination tree parents.
    parent: Vec<usize>,
    /// Pattern of the analyzed input's lower triangle (used to detect when a
    /// numeric refactorization is handed a different pattern).
    a_row_ptr: Vec<usize>,
    a_col_idx: Vec<usize>,
    /// CSR pattern of the factor `L`, diagonal included (last entry per row).
    l_row_ptr: Vec<usize>,
    l_col_idx: Vec<usize>,
}

impl CholeskySymbolic {
    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of non-zeros the factor will have (including the diagonal).
    pub fn nnz_factor(&self) -> usize {
        self.l_col_idx.len()
    }

    /// Whether `lower` (a lower triangle in CSR form) has exactly the pattern
    /// this analysis was computed for.
    fn matches_lower(&self, lower: &CsrMatrix) -> bool {
        lower.nrows() == self.n
            && lower.row_ptr() == self.a_row_ptr.as_slice()
            && lower.col_idx() == self.a_col_idx.as_slice()
    }
}

/// Result of a sparse Cholesky factorization `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct SparseCholesky {
    /// Lower-triangular factor stored by rows (CSR), diagonal included.
    l: CsrMatrix,
    /// Transpose of the factor (upper triangular by rows), used for backward
    /// solves and column access.
    lt: CsrMatrix,
    /// Elimination tree parents.
    parent: Vec<usize>,
    /// Number of non-zeros of the original lower triangle (fill-in metric).
    nnz_input_lower: usize,
}

impl SparseCholesky {
    /// Factorize a symmetric positive definite matrix given in full (both
    /// triangles) or lower-triangular CSR form.
    ///
    /// Equivalent to [`Self::analyze`] followed by [`Self::factor_with`];
    /// callers that factorize many matrices with the same pattern should cache
    /// the [`CholeskySymbolic`] and call [`Self::factor_with`] directly.
    pub fn factor(a: &CsrMatrix) -> Result<Self, SparseError> {
        let symbolic = Self::analyze(a)?;
        Self::factor_with(&symbolic, a)
    }

    /// Symbolic analysis: elimination tree + factor pattern. Fails only on
    /// non-square input; the numeric values of `a` are ignored.
    pub fn analyze(a: &CsrMatrix) -> Result<CholeskySymbolic, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let n = a.nrows();
        let lower = a.lower_triangle();
        let parent = elimination_tree(&lower);

        let mut stamp = vec![NONE; n];
        let mut l_row_ptr = Vec::with_capacity(n + 1);
        let mut l_col_idx = Vec::new();
        l_row_ptr.push(0);
        for i in 0..n {
            let pattern = ereach(&lower, i, &parent, &mut stamp);
            l_col_idx.extend_from_slice(&pattern);
            // Diagonal entry last: every pattern column is < i.
            l_col_idx.push(i);
            l_row_ptr.push(l_col_idx.len());
        }
        Ok(CholeskySymbolic {
            n,
            parent,
            a_row_ptr: lower.row_ptr().to_vec(),
            a_col_idx: lower.col_idx().to_vec(),
            l_row_ptr,
            l_col_idx,
        })
    }

    /// Numeric factorization reusing a cached symbolic analysis.
    ///
    /// `a` must have exactly the sparsity pattern that `symbolic` was computed
    /// for; otherwise [`SparseError::PatternMismatch`] is returned (callers
    /// can then re-[`analyze`](Self::analyze)).
    ///
    /// Skips the elimination-tree traversal entirely; the factor pattern is
    /// copied from the analysis (an O(nnz) memcpy, negligible next to the
    /// numeric flops) so the returned factor owns its storage.
    pub fn factor_with(symbolic: &CholeskySymbolic, a: &CsrMatrix) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let lower = a.lower_triangle();
        if !symbolic.matches_lower(&lower) {
            return Err(SparseError::PatternMismatch);
        }
        let n = symbolic.n;
        let l_row_ptr = &symbolic.l_row_ptr;
        let l_col_idx = &symbolic.l_col_idx;
        let mut values = vec![0.0f64; l_col_idx.len()];
        let mut diag = vec![0.0f64; n];
        let mut stamp = vec![NONE; n];
        let mut x = vec![0.0f64; n];

        for i in 0..n {
            let (start, end) = (l_row_ptr[i], l_row_ptr[i + 1]);
            // Pattern of row i (columns < i); the diagonal sits at end - 1.
            let pattern = &l_col_idx[start..end - 1];
            for &k in pattern {
                x[k] = 0.0;
                stamp[k] = i;
            }
            // Scatter row i of the lower triangle of A into x.
            let mut aii = 0.0;
            for (j, v) in lower.row_iter(i) {
                if j < i {
                    x[j] = v;
                } else if j == i {
                    aii = v;
                }
            }
            // Sparse forward solve: L[0..i,0..i] * y = A[0..i, i] restricted to
            // the pattern, processed in ascending column order.
            let mut sum_sq = 0.0;
            for (offset, &k) in pattern.iter().enumerate() {
                let mut s = x[k];
                // Subtract L[k, j] * y[j] for j in the pattern of row k, j < k.
                for idx in l_row_ptr[k]..l_row_ptr[k + 1] - 1 {
                    let j = l_col_idx[idx];
                    // x[j] is only valid if j is in the current pattern; entries
                    // outside the pattern are structurally zero in y.
                    if stamp[j] == i {
                        s -= values[idx] * x[j];
                    }
                }
                let y = s / diag[k];
                x[k] = y;
                sum_sq += y * y;
                values[start + offset] = y;
            }
            let d = aii - sum_sq;
            if !(d > 0.0) || !d.is_finite() {
                return Err(SparseError::NotPositiveDefinite { pivot: i, value: d });
            }
            diag[i] = d.sqrt();
            values[end - 1] = diag[i];
        }

        let l = CsrMatrix::from_raw(n, n, l_row_ptr.clone(), l_col_idx.clone(), values);
        let lt = l.transpose();
        Ok(Self { l, lt, parent: symbolic.parent.clone(), nnz_input_lower: lower.nnz() })
    }

    /// The lower-triangular factor `L` (CSR by rows).
    pub fn factor_l(&self) -> &CsrMatrix {
        &self.l
    }

    /// Elimination-tree parent array.
    pub fn etree(&self) -> &[usize] {
        &self.parent
    }

    /// Number of non-zeros of `L` (including the diagonal).
    pub fn nnz_factor(&self) -> usize {
        self.l.nnz()
    }

    /// Fill-in ratio `nnz(L) / nnz(tril(A))`.
    pub fn fill_ratio(&self) -> f64 {
        self.l.nnz() as f64 / self.nnz_input_lower.max(1) as f64
    }

    /// Log-determinant of `A`.
    pub fn logdet(&self) -> f64 {
        2.0 * self.l.diag().iter().map(|d| d.ln()).sum::<f64>()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.forward_solve_in_place(&mut x);
        self.backward_solve_in_place(&mut x);
        x
    }

    /// Forward solve `L y = b` in place.
    pub fn forward_solve_in_place(&self, x: &mut [f64]) {
        let n = self.l.nrows();
        assert_eq!(x.len(), n);
        for i in 0..n {
            let mut s = x[i];
            let mut dii = 1.0;
            for (j, v) in self.l.row_iter(i) {
                if j < i {
                    s -= v * x[j];
                } else if j == i {
                    dii = v;
                }
            }
            x[i] = s / dii;
        }
    }

    /// Backward solve `Lᵀ x = y` in place.
    pub fn backward_solve_in_place(&self, x: &mut [f64]) {
        let n = self.l.nrows();
        assert_eq!(x.len(), n);
        for i in (0..n).rev() {
            let mut s = x[i];
            let mut dii = 1.0;
            // Row i of Lᵀ holds the entries L[k, i] for k >= i.
            for (k, v) in self.lt.row_iter(i) {
                if k > i {
                    s -= v * x[k];
                } else if k == i {
                    dii = v;
                }
            }
            x[i] = s / dii;
        }
    }

    /// Takahashi selected inversion: entries of `A⁻¹` on the sparsity pattern
    /// of `L + Lᵀ` (which contains the pattern of `A`). Returns a symmetric
    /// CSR matrix on that pattern.
    ///
    /// The recursion processes columns from last to first:
    /// `Σ[j,j] = 1/L[j,j]² − (1/L[j,j]) Σ_{k>j} L[k,j] Σ[k,j]` and
    /// `Σ[i,j] = −(1/L[j,j]) Σ_{k>j} L[k,j] Σ[max(i,k),min(i,k)]` for `i > j`
    /// in the pattern; it stays closed on the factor pattern.
    pub fn selected_inverse(&self) -> CsrMatrix {
        let n = self.l.nrows();
        // Column-wise pattern of L: column j entries = row j of Lᵀ (k >= j).
        // sigma[j] stores (row i >= j, value) pairs for the pattern of column j.
        let mut sigma: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        for j in 0..n {
            let col: Vec<(usize, f64)> = self.lt.row_iter(j).map(|(k, _)| (k, 0.0)).collect();
            sigma.push(col);
        }
        let diag_l = self.l.diag();

        let lookup = |sigma: &Vec<Vec<(usize, f64)>>, i: usize, j: usize| -> f64 {
            // Σ[i,j] with i >= j, on the pattern of column j.
            let (lo, hi) = if i >= j { (j, i) } else { (i, j) };
            match sigma[lo].binary_search_by_key(&hi, |&(r, _)| r) {
                Ok(pos) => sigma[lo][pos].1,
                Err(_) => 0.0,
            }
        };

        for j in (0..n).rev() {
            let dj = diag_l[j];
            // Column j of L strictly below the diagonal: (k, L[k,j]) with k > j.
            let below: Vec<(usize, f64)> = self
                .lt
                .row_iter(j)
                .filter(|&(k, _)| k > j)
                .collect();
            // Off-diagonal entries, processed from the largest row downwards.
            let rows: Vec<usize> = sigma[j].iter().map(|&(r, _)| r).filter(|&r| r > j).collect();
            for &i in rows.iter().rev() {
                let mut s = 0.0;
                for &(k, lkj) in &below {
                    s += lkj * lookup(&sigma, i.max(k), i.min(k));
                }
                let val = -s / dj;
                if let Ok(pos) = sigma[j].binary_search_by_key(&i, |&(r, _)| r) {
                    sigma[j][pos].1 = val;
                }
            }
            // Diagonal entry.
            let mut s = 0.0;
            for &(k, lkj) in &below {
                s += lkj * lookup(&sigma, k, j);
            }
            let val = 1.0 / (dj * dj) - s / dj;
            if let Ok(pos) = sigma[j].binary_search_by_key(&j, |&(r, _)| r) {
                sigma[j][pos].1 = val;
            }
        }

        // Assemble the symmetric result.
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            for &(i, v) in &sigma[j] {
                coo.push(i, j, v);
                if i != j {
                    coo.push(j, i, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Marginal variances: the diagonal of `A⁻¹` via selected inversion.
    pub fn marginal_variances(&self) -> Vec<f64> {
        self.selected_inverse().diag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_la::{blas, chol, Matrix};

    /// A small SPD banded matrix resembling a 1-D GMRF precision.
    fn gmrf_precision(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5 + 0.1 * i as f64);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
            if i + 3 < n {
                coo.push(i, i + 3, -0.2);
                coo.push(i + 3, i, -0.2);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn factor_reconstructs() {
        let a = gmrf_precision(12);
        let f = SparseCholesky::factor(&a).unwrap();
        let l = f.factor_l().to_dense();
        let rec = blas::matmul(&l, &l.transpose());
        assert!(rec.max_abs_diff(&a.to_dense()) < 1e-10);
    }

    #[test]
    fn logdet_matches_dense() {
        let a = gmrf_precision(10);
        let f = SparseCholesky::factor(&a).unwrap();
        let ld_dense = chol::logdet_from_cholesky(&chol::cholesky(&a.to_dense()).unwrap());
        assert!((f.logdet() - ld_dense).abs() < 1e-10);
    }

    #[test]
    fn solve_matches_dense() {
        let a = gmrf_precision(15);
        let f = SparseCholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..15).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.spmv(&x_true);
        let x = f.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert!(matches!(
            SparseCholesky::factor(&a),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(matches!(SparseCholesky::factor(&a), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn selected_inverse_matches_dense_inverse_on_pattern() {
        let a = gmrf_precision(10);
        let f = SparseCholesky::factor(&a).unwrap();
        let sel = f.selected_inverse();
        let dense_inv = chol::spd_inverse(&a.to_dense()).unwrap();
        // Every entry present in the selected inverse must match the dense inverse.
        for i in 0..10 {
            for (j, v) in sel.row_iter(i) {
                assert!(
                    (v - dense_inv[(i, j)]).abs() < 1e-9,
                    "mismatch at ({i},{j}): {v} vs {}",
                    dense_inv[(i, j)]
                );
            }
        }
        // The diagonal (marginal variances) must be fully present.
        let vars = f.marginal_variances();
        for i in 0..10 {
            assert!((vars[i] - dense_inv[(i, i)]).abs() < 1e-9);
        }
    }

    #[test]
    fn cached_symbolic_refactorization_is_bitwise_identical() {
        let a = gmrf_precision(14);
        let symbolic = SparseCholesky::analyze(&a).unwrap();
        assert_eq!(symbolic.order(), 14);
        let fresh = SparseCholesky::factor(&a).unwrap();
        let reused = SparseCholesky::factor_with(&symbolic, &a).unwrap();
        assert_eq!(symbolic.nnz_factor(), fresh.nnz_factor());
        assert_eq!(fresh.factor_l().values(), reused.factor_l().values());
        assert_eq!(fresh.factor_l().col_idx(), reused.factor_l().col_idx());

        // Refactorize with different values on the same pattern.
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 1.5;
        }
        let f2 = SparseCholesky::factor_with(&symbolic, &b).unwrap();
        let direct = SparseCholesky::factor(&b).unwrap();
        assert_eq!(f2.factor_l().values(), direct.factor_l().values());
    }

    #[test]
    fn factor_with_rejects_different_pattern() {
        let a = gmrf_precision(10);
        let symbolic = SparseCholesky::analyze(&a).unwrap();
        let other = gmrf_precision(12);
        assert!(matches!(
            SparseCholesky::factor_with(&symbolic, &other),
            Err(SparseError::PatternMismatch)
        ));
        // Same order, different pattern.
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 3.0);
        }
        coo.push(9, 0, -0.5);
        coo.push(0, 9, -0.5);
        let dense_corner = coo.to_csr();
        assert!(matches!(
            SparseCholesky::factor_with(&symbolic, &dense_corner),
            Err(SparseError::PatternMismatch)
        ));
    }

    #[test]
    fn fill_in_is_reported() {
        let a = gmrf_precision(20);
        let f = SparseCholesky::factor(&a).unwrap();
        assert!(f.nnz_factor() >= a.lower_triangle().nnz());
        assert!(f.fill_ratio() >= 1.0);
    }

    #[test]
    fn etree_parents_increase() {
        let a = gmrf_precision(10);
        let lower = a.lower_triangle();
        let parent = elimination_tree(&lower);
        for (i, &p) in parent.iter().enumerate() {
            if p != NONE {
                assert!(p > i);
            }
        }
    }

    #[test]
    fn dense_like_matrix_factorizes() {
        // Fully dense SPD matrix exercised through the sparse path.
        let b = Matrix::from_fn(6, 6, |i, j| ((i * 5 + j * 3) % 7) as f64 / 7.0);
        let mut d = blas::matmul(&b, &b.transpose());
        for i in 0..6 {
            d[(i, i)] += 6.0;
        }
        let a = CsrMatrix::from_dense(&d, 0.0);
        let f = SparseCholesky::factor(&a).unwrap();
        let ld_dense = chol::logdet_from_cholesky(&chol::cholesky(&d).unwrap());
        assert!((f.logdet() - ld_dense).abs() < 1e-9);
        let sel = f.selected_inverse();
        let inv = chol::spd_inverse(&d).unwrap();
        assert!(sel.to_dense().max_abs_diff(&inv) < 1e-8);
    }
}
