//! Sparse matrix algebra: addition, products, Kronecker products and
//! congruence products (`AᵀDA`) used to assemble prior and conditional
//! precision matrices.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// `alpha * A + beta * B` for matrices of identical shape (patterns may differ).
pub fn add(alpha: f64, a: &CsrMatrix, beta: f64, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    let (nrows, ncols) = a.shape();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, a.nnz() + b.nnz());
    for r in 0..nrows {
        for (c, v) in a.row_iter(r) {
            coo.push(r, c, alpha * v);
        }
        for (c, v) in b.row_iter(r) {
            coo.push(r, c, beta * v);
        }
    }
    coo.to_csr()
}

/// Linear combination of several matrices with identical shape.
pub fn linear_combination(terms: &[(f64, &CsrMatrix)]) -> CsrMatrix {
    assert!(!terms.is_empty(), "linear_combination: empty term list");
    let shape = terms[0].1.shape();
    let mut coo = CooMatrix::new(shape.0, shape.1);
    for &(alpha, m) in terms {
        assert_eq!(m.shape(), shape, "linear_combination: shape mismatch");
        for r in 0..shape.0 {
            for (c, v) in m.row_iter(r) {
                coo.push(r, c, alpha * v);
            }
        }
    }
    coo.to_csr()
}

/// General sparse matrix–matrix product `C = A B` (row-by-row Gustavson).
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols(), b.nrows(), "spgemm: inner dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let mut coo = CooMatrix::new(nrows, ncols);
    // Dense accumulator per row (Gustavson's algorithm).
    let mut accum = vec![0.0f64; ncols];
    let mut marker = vec![usize::MAX; ncols];
    let mut nonzero_cols: Vec<usize> = Vec::new();
    for i in 0..nrows {
        nonzero_cols.clear();
        for (k, av) in a.row_iter(i) {
            for (j, bv) in b.row_iter(k) {
                if marker[j] != i {
                    marker[j] = i;
                    accum[j] = 0.0;
                    nonzero_cols.push(j);
                }
                accum[j] += av * bv;
            }
        }
        nonzero_cols.sort_unstable();
        for &j in &nonzero_cols {
            coo.push(i, j, accum[j]);
        }
    }
    coo.to_csr()
}

/// Congruence product `Aᵀ D A` where `D` is diagonal (given as a slice).
///
/// This is the update `Qc = Qp + AᵀDA` of Eq. (4): `D` is the negative Hessian
/// of the log-likelihood (for Gaussian observations, the observation
/// precisions).
pub fn congruence_diag(a: &CsrMatrix, d: &[f64]) -> CsrMatrix {
    assert_eq!(d.len(), a.nrows(), "congruence_diag: D dimension mismatch");
    let n = a.ncols();
    let mut coo = CooMatrix::new(n, n);
    for r in 0..a.nrows() {
        let dr = d[r];
        if dr == 0.0 {
            continue;
        }
        let row: Vec<(usize, f64)> = a.row_iter(r).collect();
        for &(ci, vi) in &row {
            for &(cj, vj) in &row {
                coo.push(ci, cj, dr * vi * vj);
            }
        }
    }
    coo.to_csr()
}

/// Kronecker product `A ⊗ B`.
///
/// With variables ordered time-major (time outer, space inner) the
/// spatio-temporal precision `Q_st = Σ_k M_k ⊗ S_k` is a sum of Kronecker
/// products of small temporal matrices `M_k` (tridiagonal, `n_t × n_t`) and
/// spatial FEM matrices `S_k` (`n_s × n_s`), which is exactly how the SPDE
/// discretization of the paper is assembled.
pub fn kron(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let (am, an) = a.shape();
    let (bm, bn) = b.shape();
    let mut coo = CooMatrix::with_capacity(am * bm, an * bn, a.nnz() * b.nnz());
    for ar in 0..am {
        for (ac, av) in a.row_iter(ar) {
            for br in 0..bm {
                for (bc, bv) in b.row_iter(br) {
                    coo.push(ar * bm + br, ac * bn + bc, av * bv);
                }
            }
        }
    }
    coo.to_csr()
}

/// Block-diagonal concatenation of matrices.
pub fn block_diag(blocks: &[&CsrMatrix]) -> CsrMatrix {
    let nrows: usize = blocks.iter().map(|b| b.nrows()).sum();
    let ncols: usize = blocks.iter().map(|b| b.ncols()).sum();
    let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut r0 = 0;
    let mut c0 = 0;
    for b in blocks {
        for r in 0..b.nrows() {
            for (c, v) in b.row_iter(r) {
                coo.push(r0 + r, c0 + c, v);
            }
        }
        r0 += b.nrows();
        c0 += b.ncols();
    }
    coo.to_csr()
}

/// Horizontal concatenation `[A | B]`.
pub fn hstack(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.nrows(), b.nrows(), "hstack: row mismatch");
    let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols() + b.ncols(), a.nnz() + b.nnz());
    for r in 0..a.nrows() {
        for (c, v) in a.row_iter(r) {
            coo.push(r, c, v);
        }
        for (c, v) in b.row_iter(r) {
            coo.push(r, a.ncols() + c, v);
        }
    }
    coo.to_csr()
}

/// Vertical concatenation `[A; B]`.
pub fn vstack(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols(), b.ncols(), "vstack: column mismatch");
    let mut coo = CooMatrix::with_capacity(a.nrows() + b.nrows(), a.ncols(), a.nnz() + b.nnz());
    for r in 0..a.nrows() {
        for (c, v) in a.row_iter(r) {
            coo.push(r, c, v);
        }
    }
    for r in 0..b.nrows() {
        for (c, v) in b.row_iter(r) {
            coo.push(a.nrows() + r, c, v);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_la::blas::matmul;
    use dalia_la::Matrix;

    fn rand_like(nrows: usize, ncols: usize, seed: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                let h = (i * 31 + j * 17 + seed * 7) % 5;
                if h < 2 {
                    coo.push(i, j, (h + 1) as f64 * 0.5 + (i + j) as f64 * 0.1);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn add_matches_dense() {
        let a = rand_like(4, 5, 1);
        let b = rand_like(4, 5, 2);
        let c = add(2.0, &a, -1.0, &b);
        let mut expected = a.to_dense();
        expected.scale(2.0);
        expected.axpy(-1.0, &b.to_dense());
        assert!(c.to_dense().max_abs_diff(&expected) < 1e-14);
    }

    #[test]
    fn linear_combination_matches_add() {
        let a = rand_like(3, 3, 1);
        let b = rand_like(3, 3, 2);
        let c = rand_like(3, 3, 3);
        let lc = linear_combination(&[(1.0, &a), (2.0, &b), (-0.5, &c)]);
        let step = add(1.0, &add(1.0, &a, 2.0, &b), -0.5, &c);
        assert!(lc.max_abs_diff(&step) < 1e-14);
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = rand_like(4, 3, 1);
        let b = rand_like(3, 5, 2);
        let c = spgemm(&a, &b);
        let expected = matmul(&a.to_dense(), &b.to_dense());
        assert!(c.to_dense().max_abs_diff(&expected) < 1e-13);
    }

    #[test]
    fn congruence_matches_dense() {
        let a = rand_like(6, 4, 3);
        let d: Vec<f64> = (0..6).map(|i| 0.5 + i as f64).collect();
        let c = congruence_diag(&a, &d);
        let ad = a.to_dense();
        let dm = Matrix::from_diag(&d);
        let expected = matmul(&matmul(&ad.transpose(), &dm), &ad);
        assert!(c.to_dense().max_abs_diff(&expected) < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn kron_matches_dense() {
        let a = rand_like(2, 3, 1);
        let b = rand_like(3, 2, 2);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (6, 6));
        let ad = a.to_dense();
        let bd = b.to_dense();
        let kd = k.to_dense();
        for i in 0..6 {
            for j in 0..6 {
                let expected = ad[(i / 3, j / 2)] * bd[(i % 3, j % 2)];
                assert!((kd[(i, j)] - expected).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn kron_identity_is_block_diag() {
        let b = rand_like(3, 3, 4);
        let k = kron(&CsrMatrix::identity(2), &b);
        let bd = block_diag(&[&b, &b]);
        assert!(k.max_abs_diff(&bd) < 1e-14);
    }

    #[test]
    fn stacking() {
        let a = rand_like(2, 3, 1);
        let b = rand_like(2, 2, 2);
        let h = hstack(&a, &b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.get(1, 3), b.get(1, 0));

        let c = rand_like(3, 3, 5);
        let v = vstack(&a, &c);
        assert_eq!(v.shape(), (5, 3));
        assert_eq!(v.get(3, 1), c.get(1, 1));
    }

    #[test]
    fn block_diag_shapes() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::from_diag(&[3.0, 4.0, 5.0]);
        let bd = block_diag(&[&a, &b]);
        assert_eq!(bd.shape(), (5, 5));
        assert_eq!(bd.get(0, 0), 1.0);
        assert_eq!(bd.get(4, 4), 5.0);
        assert_eq!(bd.get(0, 3), 0.0);
    }
}
