//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the workhorse format of the model layer: precision-matrix blocks,
//! design matrices and Kronecker products are all held in CSR before being
//! mapped into the block-dense BTA workspace of the structured solver.

use crate::coo::CooMatrix;
use dalia_la::Matrix;

/// Sparse matrix in CSR format with sorted column indices per row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointer array, length `nrows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Non-zero values, aligned with `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays (must be consistent; column indices sorted).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length mismatch");
        assert_eq!(col_idx.len(), values.len(), "index/value length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr tail mismatch");
        debug_assert!(col_idx.iter().all(|&c| c < ncols), "column index out of range");
        Self { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let row_ptr = (0..=n).collect();
        let col_idx = (0..n).collect();
        let values = vec![1.0; n];
        Self { nrows: n, ncols: n, row_ptr, col_idx, values }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let row_ptr = (0..=n).collect();
        let col_idx = (0..n).collect();
        Self { nrows: n, ncols: n, row_ptr, col_idx, values: diag.to_vec() }
    }

    /// Convert from COO, summing duplicate entries and sorting columns.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let (nrows, ncols) = coo.shape();
        let (rows, cols, vals) = coo.triplets();
        // Count entries per row (with duplicates).
        let mut counts = vec![0usize; nrows];
        for &r in rows {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let nnz = row_ptr[nrows];
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = row_ptr.clone();
        for k in 0..vals.len() {
            let pos = next[rows[k]];
            col_idx[pos] = cols[k];
            values[pos] = vals[k];
            next[rows[k]] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_row_ptr = vec![0usize; nrows + 1];
        let mut out_col = Vec::with_capacity(nnz);
        let mut out_val = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            for k in row_ptr[r]..row_ptr[r + 1] {
                scratch.push((col_idx[k], values[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                i = j;
            }
            out_row_ptr[r + 1] = out_col.len();
        }
        Self { nrows, ncols, row_ptr: out_row_ptr, col_idx: out_col, values: out_val }
    }

    /// Build from a dense matrix, keeping entries with |value| > tol.
    pub fn from_dense(m: &Matrix, tol: f64) -> Self {
        CooMatrix::from_dense(m, tol).to_csr()
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (pattern is immutable — used by the repeated
    /// assembly path where only values change between hyperparameter
    /// configurations).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        self.col_idx[start..end].iter().copied().zip(self.values[start..end].iter().copied())
    }

    /// Value at `(i, j)` (zero when not stored). O(log nnz_row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        match self.col_idx[start..end].binary_search(&j) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let mut s = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                s += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = s;
        }
        y
    }

    /// Transposed sparse matrix–vector product `y = A^T x`.
    pub fn spmv_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "spmv_t dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            if xr != 0.0 {
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    y[self.col_idx[k]] += self.values[k] * xr;
                }
            }
        }
        y
    }

    /// Quadratic form `x^T A x`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let ax = self.spmv(x);
        x.iter().zip(&ax).map(|(a, b)| a * b).sum()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c] += 1;
        }
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for i in 0..self.ncols {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let pos = next[c];
                col_idx[pos] = r;
                values[pos] = self.values[k];
                next[c] += 1;
            }
        }
        // Rows of the transpose are produced in increasing original-row order,
        // so column indices are already sorted.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Scale all values in place.
    pub fn scale(&mut self, alpha: f64) {
        self.values.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Scaled copy.
    pub fn scaled(&self, alpha: f64) -> CsrMatrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Dense copy (small matrices / tests).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Extract the dense sub-block `[r0, r0+rows) x [c0, c0+cols)`.
    pub fn dense_block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols, "block out of range");
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let r = r0 + i;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if c >= c0 && c < c0 + cols {
                    m[(i, c - c0)] = self.values[k];
                }
            }
        }
        m
    }

    /// Accumulate `alpha *` the dense sub-block `[r0, ..) x [c0, ..)` into `out`.
    ///
    /// This is the O(nnz) "sparse to structured dense mapping" of Sec. IV-F of
    /// the paper: rather than materializing O(n·b²) zeros, only stored entries
    /// are visited.
    pub fn add_dense_block_into(
        &self,
        r0: usize,
        c0: usize,
        alpha: f64,
        out: &mut Matrix,
        out_r0: usize,
        out_c0: usize,
    ) {
        let rows = out.nrows() - out_r0;
        let cols = out.ncols() - out_c0;
        let rows = rows.min(self.nrows.saturating_sub(r0));
        let cols = cols.min(self.ncols.saturating_sub(c0));
        for i in 0..rows {
            let r = r0 + i;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if c >= c0 && c < c0 + cols {
                    out[(out_r0 + i, out_c0 + c - c0)] += alpha * self.values[k];
                }
            }
        }
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.nrows.min(self.ncols)).map(|i| self.get(i, i)).sum()
    }

    /// Diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols)).map(|i| self.get(i, i)).collect()
    }

    /// Lower-triangular part (including diagonal).
    pub fn lower_triangle(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row_iter(r) {
                if c <= r {
                    coo.push(r, c, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Maximum absolute difference of two matrices with identical shapes
    /// (patterns may differ).
    pub fn max_abs_diff(&self, other: &CsrMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        let a = self.to_dense();
        let b = other.to_dense();
        a.max_abs_diff(&b)
    }

    /// `true` if the matrix is numerically symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.max_abs_diff(&t) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_sorted_and_summed() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 2, 3.0); // duplicate
        coo.push(0, 1, 4.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(1, 2), 4.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(0, 1), 4.0);
        // columns sorted per row
        let row1: Vec<usize> = csr.row_iter(1).map(|(c, _)| c).collect();
        assert_eq!(row1, vec![0, 2]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.spmv(&x);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
        let yt = a.spmv_t(&x);
        let expected = dalia_la::blas::matvec_t(&a.to_dense(), &x);
        for (a, b) in yt.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a.to_dense(), att.to_dense());
        assert_eq!(a.transpose().to_dense(), a.to_dense().transpose());
    }

    #[test]
    fn get_and_trace() {
        let a = sample();
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
        assert_eq!(a.trace(), 9.0);
        assert_eq!(a.diag(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn dense_block_extraction() {
        let a = sample();
        let b = a.dense_block(0, 0, 2, 2);
        assert_eq!(b[(0, 0)], 1.0);
        assert_eq!(b[(1, 1)], 3.0);
        assert_eq!(b[(0, 1)], 0.0);
    }

    #[test]
    fn add_dense_block_into_accumulates() {
        let a = sample();
        let mut out = Matrix::zeros(2, 2);
        a.add_dense_block_into(1, 1, 2.0, &mut out, 0, 0);
        assert_eq!(out[(0, 0)], 6.0); // 2 * 3
        assert_eq!(out[(1, 1)], 10.0); // 2 * 5
    }

    #[test]
    fn quadratic_form_matches_dense() {
        let a = sample();
        let x = vec![1.0, -1.0, 2.0];
        let d = a.to_dense();
        let ax = dalia_la::blas::matvec(&d, &x);
        let expected: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!((a.quadratic_form(&x) - expected).abs() < 1e-14);
    }

    #[test]
    fn identity_and_diag() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.spmv(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let d = CsrMatrix::from_diag(&[2.0, 4.0]);
        assert_eq!(d.spmv(&[1.0, 1.0]), vec![2.0, 4.0]);
    }

    #[test]
    fn lower_triangle() {
        let a = sample();
        let l = a.lower_triangle();
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(2, 0), 4.0);
        assert_eq!(l.get(2, 2), 5.0);
    }

    #[test]
    fn symmetry_check() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        coo.push(0, 0, 1.0);
        assert!(coo.to_csr().is_symmetric(1e-14));
        let a = sample();
        assert!(!a.is_symmetric(1e-14));
    }
}
