//! Property-based tests for sparse formats, operations and the sparse
//! Cholesky factorization.

use dalia_la::{blas, chol};
use dalia_sparse::ops;
use dalia_sparse::{CooMatrix, CsrMatrix, Permutation, SparseCholesky};
use proptest::prelude::*;

/// Random sparse matrix with ~30% density.
fn sparse_strategy(nrows: usize, ncols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0.0f64..1.0, -1.0f64..1.0), nrows * ncols).prop_map(move |cells| {
        let mut coo = CooMatrix::new(nrows, ncols);
        for (idx, (p, v)) in cells.iter().enumerate() {
            if *p < 0.3 {
                coo.push(idx / ncols, idx % ncols, *v);
            }
        }
        coo.to_csr()
    })
}

/// Random SPD sparse matrix: tridiagonal-ish GMRF precision with random values.
fn spd_sparse_strategy(n: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec(0.1f64..1.0, n).prop_map(move |off| {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut d = 0.5;
            if i + 1 < n {
                coo.push(i, i + 1, -off[i]);
                coo.push(i + 1, i, -off[i]);
                d += off[i];
            }
            if i > 0 {
                d += off[i - 1];
            }
            coo.push(i, i, d);
        }
        coo.to_csr()
    })
}

fn permutation_strategy(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            perm.swap(i, j);
        }
        Permutation::from_vec(perm)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csr_dense_roundtrip(a in sparse_strategy(6, 8)) {
        let d = a.to_dense();
        let back = CsrMatrix::from_dense(&d, 0.0);
        prop_assert!(back.to_dense().max_abs_diff(&d) < 1e-15);
    }

    #[test]
    fn spmv_matches_dense(a in sparse_strategy(7, 5), x in proptest::collection::vec(-1.0f64..1.0, 5)) {
        let y = a.spmv(&x);
        let yd = blas::matvec(&a.to_dense(), &x);
        for (a, b) in y.iter().zip(&yd) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution(a in sparse_strategy(6, 9)) {
        prop_assert!(a.transpose().transpose().to_dense().max_abs_diff(&a.to_dense()) < 1e-15);
    }

    #[test]
    fn spgemm_matches_dense(a in sparse_strategy(5, 4), b in sparse_strategy(4, 6)) {
        let c = ops::spgemm(&a, &b);
        let expected = blas::matmul(&a.to_dense(), &b.to_dense());
        prop_assert!(c.to_dense().max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn kron_mixed_product(a in sparse_strategy(3, 3), b in sparse_strategy(2, 2), c in sparse_strategy(3, 3), d in sparse_strategy(2, 2)) {
        // (A ⊗ B)(C ⊗ D) == (AC) ⊗ (BD)
        let lhs = ops::spgemm(&ops::kron(&a, &b), &ops::kron(&c, &d));
        let rhs = ops::kron(&ops::spgemm(&a, &c), &ops::spgemm(&b, &d));
        prop_assert!(lhs.to_dense().max_abs_diff(&rhs.to_dense()) < 1e-11);
    }

    #[test]
    fn congruence_is_symmetric_psd(a in sparse_strategy(6, 4), d in proptest::collection::vec(0.01f64..2.0, 6)) {
        let c = ops::congruence_diag(&a, &d);
        prop_assert!(c.is_symmetric(1e-12));
        // x' C x >= 0 for a few vectors.
        for seed in 0..3u64 {
            let x: Vec<f64> = (0..4).map(|i| ((i as f64 + 1.0) * (seed as f64 + 0.7)).sin()).collect();
            prop_assert!(c.quadratic_form(&x) >= -1e-10);
        }
    }

    #[test]
    fn permutation_preserves_quadratic_form(a in spd_sparse_strategy(8), p in permutation_strategy(8), x in proptest::collection::vec(-1.0f64..1.0, 8)) {
        // B[i, j] = A[perm[i], perm[j]], so xᵀ B x = yᵀ A y with y[perm[i]] = x[i].
        let b = p.apply_sym(&a);
        let y = p.apply_inv_vec(&x);
        prop_assert!((b.quadratic_form(&x) - a.quadratic_form(&y)).abs() < 1e-10);
    }

    #[test]
    fn permutation_inverse_roundtrip(p in permutation_strategy(10), x in proptest::collection::vec(-5.0f64..5.0, 10)) {
        let y = p.apply_vec(&x);
        let back = p.apply_inv_vec(&y);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn sparse_cholesky_logdet_and_solve(a in spd_sparse_strategy(10), xs in proptest::collection::vec(-1.0f64..1.0, 10)) {
        let f = SparseCholesky::factor(&a).unwrap();
        let dense = a.to_dense();
        let ld = chol::logdet_from_cholesky(&chol::cholesky(&dense).unwrap());
        prop_assert!((f.logdet() - ld).abs() < 1e-8 * (1.0 + ld.abs()));

        let b = a.spmv(&xs);
        let sol = f.solve(&b);
        for (s, t) in sol.iter().zip(&xs) {
            prop_assert!((s - t).abs() < 1e-7);
        }
    }

    #[test]
    fn sparse_cholesky_permutation_invariant_logdet(a in spd_sparse_strategy(9), p in permutation_strategy(9)) {
        // log|PAPᵀ| == log|A|
        let f1 = SparseCholesky::factor(&a).unwrap();
        let f2 = SparseCholesky::factor(&p.apply_sym(&a)).unwrap();
        prop_assert!((f1.logdet() - f2.logdet()).abs() < 1e-8 * (1.0 + f1.logdet().abs()));
    }

    #[test]
    fn selected_inverse_diag_matches_dense(a in spd_sparse_strategy(8)) {
        let f = SparseCholesky::factor(&a).unwrap();
        let vars = f.marginal_variances();
        let inv = chol::spd_inverse(&a.to_dense()).unwrap();
        for i in 0..8 {
            prop_assert!((vars[i] - inv[(i, i)]).abs() < 1e-8);
        }
    }
}
