//! # dalia-serve — batched read-only posterior serving
//!
//! The serving layer of DALIA-RS: an [`InlaService`] front-end that admits
//! predictive queries from many concurrent clients against one immutable
//! [`PosteriorSnapshot`] and coalesces them, under a configurable batching
//! window and size, into bursts executed in parallel on `dalia-pool`.
//!
//! ## Why a snapshot, why batching
//!
//! A fit-time [`InlaSession`](dalia_core::InlaSession) funnels every query
//! through mutable solver workspaces; nothing can serve concurrent read-only
//! traffic. The snapshot freezes the fitted artifacts — the Cholesky factor
//! of `Q_c(θ*)`, conditional mean, selected-inverse marginals, the
//! hyperparameter posterior — behind `&self` methods, so one snapshot answers
//! any number of threads. The service adds admission control on top: clients
//! that arrive within one `batch_window` ride in one coalesced batch whose
//! requests execute as parallel tasks on the pool, amortizing thread wake-ups
//! and keeping every worker busy under load.
//!
//! ## Determinism contract
//!
//! Each request is answered by a pure function of `(snapshot, request)` —
//! requests are *never* merged into a shared multi-RHS solve across request
//! boundaries (each request's own targets already form one blocked solve).
//! Results are therefore bitwise identical regardless of batch composition,
//! concurrency, or arrival order; a stress test pins this. See the "Serving"
//! section of `docs/architecture.md` for the policy rationale.
//!
//! ```
//! use dalia_core::{InlaEngine, VarianceMode};
//! use dalia_mesh::{Domain, Point, TriangleMesh};
//! use dalia_model::{CoregionalModel, ModelHyper, Observation, PredictionTarget};
//! use dalia_serve::{InlaService, ServeConfig};
//! use std::sync::Arc;
//!
//! let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
//! let obs: Vec<Observation> = (0..3)
//!     .map(|t| Observation {
//!         var: 0,
//!         t,
//!         loc: Point::new(0.3, 0.4),
//!         covariates: vec![1.0],
//!         value: 0.1 * t as f64,
//!     })
//!     .collect();
//! let model = Arc::new(CoregionalModel::new(&mesh, 3, 1.0, 1, 1, obs).unwrap());
//! let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
//! let session = InlaEngine::builder(&model).max_iter(2).build().unwrap();
//! let snapshot = session.run(&theta0).unwrap().into_snapshot(&session).unwrap();
//!
//! let service = InlaService::new(snapshot, ServeConfig::default()).unwrap();
//! let served = service
//!     .predict(
//!         &[PredictionTarget { var: 0, t: 1, loc: Point::new(0.5, 0.5), covariates: vec![1.0] }],
//!         VarianceMode::Exact,
//!     )
//!     .unwrap();
//! assert!(served.value.sd[0] > 0.0);
//! assert_eq!(served.timing.batch_size, 1);
//! ```

#![warn(missing_docs)]

use dalia_core::snapshot::{PosteriorSnapshot, VarianceMode};
use dalia_core::{CoreError, Prediction};
use dalia_la::Matrix;
use dalia_model::{PredictionPlan, PredictionTarget};
use dalia_pool::ThreadPool;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Errors produced by the serving layer.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The underlying engine rejected the request (bad targets, locations
    /// outside the mesh domain, ...).
    Core(CoreError),
    /// A latent-marginal lookup indexed past the latent dimension.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The snapshot's latent dimension.
        dim: usize,
    },
    /// The service configuration failed [`ServeConfig::validate`].
    InvalidConfig(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "serve: {e}"),
            ServeError::IndexOutOfRange { index, dim } => {
                write!(f, "serve: latent index {index} out of range (latent dimension {dim})")
            }
            ServeError::InvalidConfig(reason) => {
                write!(f, "serve: invalid service configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Admission-control knobs of an [`InlaService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Close the batching window early once this many requests are pending.
    /// The cap steers the window, it does not split batches: a drain takes
    /// everything pending at that instant.
    pub max_batch: usize,
    /// How long the first client of a batch (the *leader*) waits for
    /// followers before executing. `Duration::ZERO` disables coalescing —
    /// every request executes immediately (the unbatched baseline).
    pub batch_window: Duration,
    /// Worker threads of the service's own execution pool; `0` shares the
    /// process-global `dalia-pool` instead of owning one.
    pub workers: usize,
}

impl ServeConfig {
    /// Validate the configuration, wired like
    /// [`InlaSettings::validate`](dalia_core::InlaSettings::validate): called
    /// by [`InlaService::new`], which refuses to construct a service from a
    /// nonsensical configuration instead of misbehaving later.
    ///
    /// Rejects `max_batch == 0` (the leader's window-close condition
    /// `pending >= max_batch` would hold vacuously, silently degrading every
    /// batch to size 1 while claiming to coalesce — and any future splitting
    /// drain would divide by it).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1 (0 would close every batching window \
                 before a single request is admitted)"
                    .into(),
            ));
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { max_batch: 32, batch_window: Duration::from_micros(200), workers: 0 }
    }
}

/// Per-request phase timings, reported with every response.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeTiming {
    /// Seconds from submission to execution start (window wait + queueing).
    pub queue_seconds: f64,
    /// Seconds executing this request's own task (design application,
    /// triangular solves, sampling).
    pub solve_seconds: f64,
    /// Number of requests in the coalesced batch this one rode in.
    pub batch_size: usize,
}

/// A served response: the value plus its [`ServeTiming`].
#[derive(Clone, Debug)]
pub struct Served<T> {
    /// The request's result.
    pub value: T,
    /// Where the request's wall-clock went.
    pub timing: ServeTiming,
}

/// Running counters of a service (see [`InlaService::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Total requests admitted.
    pub requests: u64,
    /// Total batches executed.
    pub batches: u64,
    /// Largest coalesced batch seen.
    pub largest_batch: usize,
}

impl ServiceStats {
    /// Mean requests per batch (1.0 when nothing coalesced).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The kinds of work a request can ask for. Prediction targets are resolved
/// into a [`PredictionPlan`] on the *client* thread at submission, so
/// execution is infallible and the mesh walk never blocks the batch.
enum RequestKind {
    Predict { plan: PredictionPlan, mode: VarianceMode, response_scale: bool },
    LatentMarginals { indices: Vec<usize> },
    Draws { n: usize, seed: u64 },
}

/// Response payload matching [`RequestKind`].
enum Response {
    Prediction(Prediction),
    LatentMarginals(Vec<(f64, f64)>),
    Draws(Matrix),
}

/// One client's rendezvous cell: filled by the executing task, awaited by the
/// submitting thread.
struct Slot {
    done: Mutex<Option<(Response, ServeTiming)>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self { done: Mutex::new(None), cv: Condvar::new() })
    }

    fn fill(&self, value: (Response, ServeTiming)) {
        *self.done.lock().expect("serve slot poisoned") = Some(value);
        self.cv.notify_all();
    }

    fn wait(&self) -> (Response, ServeTiming) {
        let mut g = self.done.lock().expect("serve slot poisoned");
        loop {
            match g.take() {
                Some(v) => return v,
                None => g = self.cv.wait(g).expect("serve slot poisoned"),
            }
        }
    }
}

struct PendingRequest {
    kind: RequestKind,
    slot: Arc<Slot>,
    submitted: Instant,
}

/// Leader–follower batch queue. The first client to find no active leader
/// becomes the leader: it waits out the batching window (closing early at
/// `max_batch`), drains everything pending into one batch, and executes it.
/// Followers just park on their slot. Leadership is released at drain time,
/// *before* execution, so a new batch can form (and run on the pool) while
/// the previous one is still executing.
struct BatchQueue {
    state: Mutex<QueueState>,
    leader_cv: Condvar,
}

struct QueueState {
    pending: Vec<PendingRequest>,
    leader_active: bool,
}

/// Which pool executes batches.
enum PoolHandle {
    Owned(ThreadPool),
    Global,
}

impl PoolHandle {
    fn get(&self) -> &ThreadPool {
        match self {
            PoolHandle::Owned(p) => p,
            PoolHandle::Global => dalia_pool::global(),
        }
    }
}

/// A concurrent, batching front-end over one frozen [`PosteriorSnapshot`].
///
/// All methods take `&self`; share the service by reference (or `Arc`) across
/// any number of client threads. See the [crate docs](self) for the
/// coalescing policy and determinism contract.
pub struct InlaService {
    snapshot: PosteriorSnapshot,
    config: ServeConfig,
    pool: PoolHandle,
    queue: BatchQueue,
    stats: Mutex<ServiceStats>,
}

impl InlaService {
    /// Wrap `snapshot` in a service with the given admission configuration,
    /// validating the configuration first (see [`ServeConfig::validate`]).
    pub fn new(snapshot: PosteriorSnapshot, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let pool = if config.workers == 0 {
            PoolHandle::Global
        } else {
            PoolHandle::Owned(ThreadPool::new(config.workers))
        };
        Ok(Self {
            snapshot,
            config,
            pool,
            queue: BatchQueue {
                state: Mutex::new(QueueState { pending: Vec::new(), leader_active: false }),
                leader_cv: Condvar::new(),
            },
            stats: Mutex::new(ServiceStats::default()),
        })
    }

    /// Swap the frozen snapshot for `next`, returning the previous one — the
    /// serving side of a streaming window: the owner advances a
    /// [`StreamingWindow`](dalia_core::StreamingWindow), freezes it with its
    /// cheap re-snapshot path, and swaps it in here without tearing down the
    /// service, its pool, or its batching queue. Requires `&mut self` (i.e. a
    /// quiescent service); under an `Arc`-shared service, swap at the
    /// `Arc` level instead.
    pub fn swap_snapshot(&mut self, next: PosteriorSnapshot) -> PosteriorSnapshot {
        std::mem::replace(&mut self.snapshot, next)
    }

    /// The frozen snapshot the service answers from.
    pub fn snapshot(&self) -> &PosteriorSnapshot {
        &self.snapshot
    }

    /// The admission configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Unwrap the service, recovering the snapshot.
    pub fn into_snapshot(self) -> PosteriorSnapshot {
        self.snapshot
    }

    /// Running request/batch counters.
    pub fn stats(&self) -> ServiceStats {
        *self.stats.lock().expect("serve stats poisoned")
    }

    /// Predict at `targets` in the requested [`VarianceMode`]. Target
    /// validation and the mesh walk happen on the calling thread before the
    /// request enters the batch queue; the whole target set is answered by
    /// one design application (plus, for [`VarianceMode::Exact`], one blocked
    /// multi-RHS solve).
    pub fn predict(
        &self,
        targets: &[PredictionTarget],
        mode: VarianceMode,
    ) -> Result<Served<Prediction>, ServeError> {
        let plan = self.snapshot.plan(targets)?;
        let (resp, timing) =
            self.submit(RequestKind::Predict { plan, mode, response_scale: false });
        match resp {
            Response::Prediction(p) => Ok(Served { value: p, timing }),
            _ => unreachable!("serve: response kind mismatch"),
        }
    }

    /// Predict at `targets` on the **response scale** of the model's
    /// likelihood (Poisson rate per unit exposure, Bernoulli success
    /// probability, identity for Gaussian), with delta-method standard
    /// deviations. Same admission path as [`predict`](Self::predict).
    pub fn predict_response(
        &self,
        targets: &[PredictionTarget],
        mode: VarianceMode,
    ) -> Result<Served<Prediction>, ServeError> {
        let plan = self.snapshot.plan(targets)?;
        let (resp, timing) =
            self.submit(RequestKind::Predict { plan, mode, response_scale: true });
        match resp {
            Response::Prediction(p) => Ok(Served { value: p, timing }),
            _ => unreachable!("serve: response kind mismatch"),
        }
    }

    /// Look up `(mean, sd)` of the latent components `indices`.
    pub fn latent_marginals(
        &self,
        indices: &[usize],
    ) -> Result<Served<Vec<(f64, f64)>>, ServeError> {
        let dim = self.snapshot.latent_dim();
        if let Some(&bad) = indices.iter().find(|&&i| i >= dim) {
            return Err(ServeError::IndexOutOfRange { index: bad, dim });
        }
        let (resp, timing) =
            self.submit(RequestKind::LatentMarginals { indices: indices.to_vec() });
        match resp {
            Response::LatentMarginals(v) => Ok(Served { value: v, timing }),
            _ => unreachable!("serve: response kind mismatch"),
        }
    }

    /// Draw `n` posterior samples of the latent field (one per column),
    /// deterministic per `(snapshot, n, seed)`.
    pub fn draws(&self, n: usize, seed: u64) -> Result<Served<Matrix>, ServeError> {
        let (resp, timing) = self.submit(RequestKind::Draws { n, seed });
        match resp {
            Response::Draws(m) => Ok(Served { value: m, timing }),
            _ => unreachable!("serve: response kind mismatch"),
        }
    }

    /// Enqueue a validated request and drive the leader–follower protocol to
    /// completion.
    fn submit(&self, kind: RequestKind) -> (Response, ServeTiming) {
        let slot = Slot::new();
        let pending = PendingRequest { kind, slot: Arc::clone(&slot), submitted: Instant::now() };

        let mut st = self.queue.state.lock().expect("serve queue poisoned");
        st.pending.push(pending);
        if st.leader_active {
            // Follower: maybe close the leader's window early, then park.
            if st.pending.len() >= self.config.max_batch {
                self.queue.leader_cv.notify_one();
            }
            drop(st);
            return slot.wait();
        }

        // Leader: wait out the window (or a full batch), then drain & execute.
        st.leader_active = true;
        let deadline = Instant::now() + self.config.batch_window;
        while st.pending.len() < self.config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .queue
                .leader_cv
                .wait_timeout(st, deadline - now)
                .expect("serve queue poisoned");
            st = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let batch: Vec<PendingRequest> = st.pending.drain(..).collect();
        st.leader_active = false;
        drop(st);

        self.execute_batch(batch);
        slot.wait()
    }

    /// Run every request of `batch` as its own task on the pool. Requests are
    /// deliberately *not* merged into one shared solve: per-request execution
    /// keeps every answer a pure function of `(snapshot, request)`, so batch
    /// composition can never perturb results (see the crate docs).
    fn execute_batch(&self, batch: Vec<PendingRequest>) {
        let n = batch.len();
        {
            let mut stats = self.stats.lock().expect("serve stats poisoned");
            stats.requests += n as u64;
            stats.batches += 1;
            stats.largest_batch = stats.largest_batch.max(n);
        }
        let snapshot = &self.snapshot;
        self.pool.get().scope(|s| {
            for req in batch {
                s.spawn(move || {
                    let t0 = Instant::now();
                    let queue_seconds = t0.duration_since(req.submitted).as_secs_f64();
                    let value = execute(snapshot, req.kind);
                    let timing = ServeTiming {
                        queue_seconds,
                        solve_seconds: t0.elapsed().as_secs_f64(),
                        batch_size: n,
                    };
                    req.slot.fill((value, timing));
                });
            }
        });
    }
}

/// Pure request execution against the frozen snapshot.
fn execute(snapshot: &PosteriorSnapshot, kind: RequestKind) -> Response {
    match kind {
        RequestKind::Predict { plan, mode, response_scale } => Response::Prediction(
            if response_scale {
                snapshot.predict_response_planned(&plan, mode)
            } else {
                snapshot.predict_planned(&plan, mode)
            },
        ),
        RequestKind::LatentMarginals { indices } => Response::LatentMarginals(
            indices.iter().map(|&i| snapshot.latent_marginal(i)).collect(),
        ),
        RequestKind::Draws { n, seed } => Response::Draws(snapshot.sample(n, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_core::{InlaEngine, InlaSettings};
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::{CoregionalModel, ModelHyper, Observation};

    fn toy_model() -> (std::sync::Arc<CoregionalModel>, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let mut obs = Vec::new();
        for t in 0..nt {
            for &(x, y) in &[(0.2, 0.3), (0.7, 0.6), (0.5, 0.9), (0.85, 0.2)] {
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.1 * x + 0.05 * t as f64,
                });
            }
        }
        let model = std::sync::Arc::new(CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap());
        let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
        (model, theta0)
    }

    fn service_for(
        model: &std::sync::Arc<CoregionalModel>,
        theta0: &[f64],
        config: ServeConfig,
    ) -> InlaService {
        let session = InlaEngine::builder(model)
            .settings(InlaSettings::dalia(1))
            .max_iter(2)
            .build()
            .unwrap();
        let snapshot = session.run(theta0).unwrap().into_snapshot(&session).unwrap();
        InlaService::new(snapshot, config).unwrap()
    }

    fn targets_near(seed: usize) -> Vec<PredictionTarget> {
        (0..3)
            .map(|i| PredictionTarget {
                var: 0,
                t: (seed + i) % 3,
                loc: Point::new(
                    0.15 + 0.07 * ((seed + i) % 9) as f64,
                    0.2 + 0.08 * ((seed * 3 + i) % 9) as f64,
                ),
                covariates: vec![1.0],
            })
            .collect()
    }

    #[test]
    fn single_request_matches_direct_snapshot_call() {
        let (model, theta0) = toy_model();
        let svc = service_for(&model, &theta0, ServeConfig::default());
        let targets = targets_near(1);
        for mode in [VarianceMode::Diagonal, VarianceMode::Exact] {
            let served = svc.predict(&targets, mode).unwrap();
            let plan = svc.snapshot().plan(&targets).unwrap();
            let direct = svc.snapshot().predict_planned(&plan, mode);
            assert_eq!(served.value.mean, direct.mean, "{mode:?}");
            assert_eq!(served.value.sd, direct.sd, "{mode:?}");
            assert_eq!(served.timing.batch_size, 1);
            assert!(served.timing.solve_seconds >= 0.0);
        }
        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn latent_marginals_and_draws_round_trip() {
        let (model, theta0) = toy_model();
        let svc = service_for(&model, &theta0, ServeConfig::default());
        let served = svc.latent_marginals(&[0, 3, 7]).unwrap();
        assert_eq!(served.value.len(), 3);
        assert_eq!(served.value[1], svc.snapshot().latent_marginal(3));

        let draws = svc.draws(5, 99).unwrap();
        assert_eq!(draws.value.ncols(), 5);
        assert_eq!(draws.value.nrows(), svc.snapshot().latent_dim());
        let again = svc.draws(5, 99).unwrap();
        assert_eq!(draws.value.max_abs_diff(&again.value), 0.0, "seeded draws must repeat");
    }

    #[test]
    fn invalid_requests_are_rejected_before_queueing() {
        let (model, theta0) = toy_model();
        let svc = service_for(&model, &theta0, ServeConfig::default());
        let outside = vec![PredictionTarget {
            var: 0,
            t: 0,
            loc: Point::new(9.0, 9.0),
            covariates: vec![1.0],
        }];
        assert!(matches!(
            svc.predict(&outside, VarianceMode::Diagonal),
            Err(ServeError::Core(_))
        ));
        let dim = svc.snapshot().latent_dim();
        assert!(matches!(
            svc.latent_marginals(&[0, dim]),
            Err(ServeError::IndexOutOfRange { index, .. }) if index == dim
        ));
        // Rejected requests never entered the queue.
        assert_eq!(svc.stats().requests, 0);
    }

    #[test]
    fn zero_window_disables_coalescing() {
        let (model, theta0) = toy_model();
        let svc = service_for(
            &model,
            &theta0,
            ServeConfig { batch_window: Duration::ZERO, ..ServeConfig::default() },
        );
        for i in 0..4 {
            let served = svc.predict(&targets_near(i), VarianceMode::Diagonal).unwrap();
            assert_eq!(served.timing.batch_size, 1);
        }
        let stats = svc.stats();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.largest_batch, 1);
        assert_eq!(stats.mean_batch(), 1.0);
    }

    #[test]
    fn concurrent_clients_coalesce_under_a_wide_window() {
        let (model, theta0) = toy_model();
        let svc = service_for(
            &model,
            &theta0,
            ServeConfig {
                batch_window: Duration::from_millis(50),
                max_batch: 8,
                workers: 2,
            },
        );
        std::thread::scope(|s| {
            for i in 0..6 {
                let svc = &svc;
                s.spawn(move || svc.predict(&targets_near(i), VarianceMode::Exact).unwrap());
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 6);
        // With a 50ms window and near-simultaneous arrival, at least some
        // coalescing must happen (strictly fewer batches than requests).
        assert!(
            stats.batches < 6,
            "no coalescing: {} batches for {} requests",
            stats.batches,
            stats.requests
        );
        assert!(stats.largest_batch >= 2);
        assert!(stats.mean_batch() > 1.0);
    }

    #[test]
    fn response_scale_prediction_is_identity_for_gaussian() {
        let (model, theta0) = toy_model();
        let svc = service_for(&model, &theta0, ServeConfig::default());
        let targets = targets_near(2);
        let lin = svc.predict(&targets, VarianceMode::Diagonal).unwrap();
        let resp = svc.predict_response(&targets, VarianceMode::Diagonal).unwrap();
        assert_eq!(lin.value.mean, resp.value.mean, "identity link: mean unchanged");
        assert_eq!(lin.value.sd, resp.value.sd, "identity link: unit delta factor");
    }

    #[test]
    fn service_error_display() {
        let e = ServeError::IndexOutOfRange { index: 9, dim: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        let e = ServeError::InvalidConfig("max_batch must be at least 1".into());
        assert!(e.to_string().contains("max_batch"));
    }

    #[test]
    fn zero_max_batch_is_rejected_at_construction() {
        assert!(matches!(
            ServeConfig { max_batch: 0, ..ServeConfig::default() }.validate(),
            Err(ServeError::InvalidConfig(_))
        ));
        let (model, theta0) = toy_model();
        let session = InlaEngine::builder(&model)
            .settings(InlaSettings::dalia(1))
            .max_iter(2)
            .build()
            .unwrap();
        let snapshot = session.run(&theta0).unwrap().into_snapshot(&session).unwrap();
        assert!(matches!(
            InlaService::new(snapshot, ServeConfig { max_batch: 0, ..ServeConfig::default() }),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn snapshot_swap_follows_an_advancing_window() {
        let (model, theta0) = toy_model();
        let session = InlaEngine::builder(&model)
            .settings(InlaSettings::dalia(1))
            .max_iter(2)
            .build()
            .unwrap();
        let result = session.run(&theta0).unwrap();
        let snapshot = session.snapshot(&result).unwrap();
        let mut svc = InlaService::new(snapshot, ServeConfig::default()).unwrap();
        assert_eq!(svc.snapshot().model().dims.nt, 3);

        // Advance the window by one slice and swap the cheap re-snapshot in.
        let mut w = session.streaming_window(&result).unwrap();
        w.append_slices(
            1,
            vec![dalia_model::Observation {
                var: 0,
                t: 3,
                loc: Point::new(0.45, 0.55),
                covariates: vec![1.0],
                value: 0.2,
            }],
        )
        .unwrap();
        let old = svc.swap_snapshot(w.snapshot().unwrap());
        assert_eq!(old.model().dims.nt, 3);
        assert_eq!(svc.snapshot().model().dims.nt, 4);
        // The swapped-in snapshot serves the grown window.
        let served = svc
            .predict(
                &[PredictionTarget {
                    var: 0,
                    t: 3,
                    loc: Point::new(0.5, 0.5),
                    covariates: vec![1.0],
                }],
                VarianceMode::Exact,
            )
            .unwrap();
        assert!(served.value.sd[0].is_finite() && served.value.sd[0] > 0.0);
    }
}
