//! Acceptance stress test: concurrent serving is bitwise-identical to
//! sequential single-query serving.
//!
//! Twelve client threads hammer one `InlaService` with a mixed workload
//! (diagonal predictions, exact-variance predictions, latent-marginal
//! lookups, seeded posterior draws) under a wide batching window, so
//! requests coalesce into shared batches in nondeterministic compositions.
//! Every response must match, bit for bit, (a) a direct call on the
//! underlying snapshot and (b) an unbatched (zero-window) service — the
//! determinism contract of `dalia-serve`.

use dalia_core::{InlaEngine, InlaResult, InlaSession, InlaSettings, VarianceMode};
use dalia_mesh::{Domain, Point, TriangleMesh};
use dalia_model::{CoregionalModel, ModelHyper, Observation, PredictionTarget};
use dalia_serve::{InlaService, ServeConfig};
use std::time::Duration;

const CLIENTS: usize = 12;
const ROUNDS: usize = 4;

fn toy_model() -> (std::sync::Arc<CoregionalModel>, Vec<f64>) {
    let mesh = TriangleMesh::structured(Domain::unit_square(), 4, 4);
    let nt = 4;
    let mut obs = Vec::new();
    let locs = [(0.2, 0.3), (0.7, 0.6), (0.5, 0.9), (0.85, 0.2), (0.1, 0.75), (0.4, 0.45)];
    for t in 0..nt {
        for &(x, y) in &locs {
            obs.push(Observation {
                var: 0,
                t,
                loc: Point::new(x, y),
                covariates: vec![1.0],
                value: (x - y) * 0.4 + 0.05 * t as f64,
            });
        }
    }
    let model = std::sync::Arc::new(CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap());
    let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
    (model, theta0)
}

fn fit(model: &std::sync::Arc<CoregionalModel>, theta0: &[f64]) -> (InlaSession, InlaResult) {
    let session = InlaEngine::builder(model)
        .settings(InlaSettings::dalia(1))
        .max_iter(2)
        .build()
        .unwrap();
    let result = session.run(theta0).unwrap();
    (session, result)
}

/// Deterministic per-client prediction targets, all inside the unit square.
fn targets_for(client: usize, round: usize) -> Vec<PredictionTarget> {
    (0..3)
        .map(|i| {
            let k = client * 7 + round * 3 + i;
            PredictionTarget {
                var: 0,
                t: k % 4,
                loc: Point::new(
                    0.08 + 0.06 * ((k * 5) % 14) as f64,
                    0.07 + 0.05 * ((k * 11) % 17) as f64,
                ),
                covariates: vec![1.0],
            }
        })
        .collect()
}

/// What one client observed for one round, in raw bits for exact comparison.
#[derive(Debug, PartialEq)]
struct RoundResult {
    predict_diag: (Vec<u64>, Vec<u64>),
    predict_exact: (Vec<u64>, Vec<u64>),
    marginals: Vec<(u64, u64)>,
    draw_bits: Vec<u64>,
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn run_round(svc: &InlaService, client: usize, round: usize) -> RoundResult {
    let targets = targets_for(client, round);
    let diag = svc.predict(&targets, VarianceMode::Diagonal).unwrap().value;
    let exact = svc.predict(&targets, VarianceMode::Exact).unwrap().value;
    let dim = svc.snapshot().latent_dim();
    let indices: Vec<usize> = (0..5).map(|i| (client * 13 + round * 5 + i * 3) % dim).collect();
    let marginals = svc.latent_marginals(&indices).unwrap().value;
    let draws = svc.draws(2, (client * 1000 + round) as u64).unwrap().value;
    let mut draw_bits = Vec::new();
    for j in 0..draws.ncols() {
        draw_bits.extend(draws.col(j).iter().map(|x| x.to_bits()));
    }
    RoundResult {
        predict_diag: (bits(&diag.mean), bits(&diag.sd)),
        predict_exact: (bits(&exact.mean), bits(&exact.sd)),
        marginals: marginals.iter().map(|&(m, s)| (m.to_bits(), s.to_bits())).collect(),
        draw_bits,
    }
}

#[test]
fn concurrent_batched_serving_is_bitwise_identical_to_sequential() {
    let (model, theta0) = toy_model();
    let (session, result) = fit(&model, &theta0);

    // Reference 1: direct snapshot calls, fully sequential, no service.
    let snapshot = session.snapshot(&result).unwrap();
    let mut reference = Vec::with_capacity(CLIENTS * ROUNDS);
    for client in 0..CLIENTS {
        for round in 0..ROUNDS {
            let targets = targets_for(client, round);
            let plan = snapshot.plan(&targets).unwrap();
            let diag = snapshot.predict_planned(&plan, VarianceMode::Diagonal);
            let exact = snapshot.predict_planned(&plan, VarianceMode::Exact);
            let dim = snapshot.latent_dim();
            let marginals: Vec<(u64, u64)> = (0..5)
                .map(|i| (client * 13 + round * 5 + i * 3) % dim)
                .map(|i| {
                    let (m, s) = snapshot.latent_marginal(i);
                    (m.to_bits(), s.to_bits())
                })
                .collect();
            let draws = snapshot.sample(2, (client * 1000 + round) as u64);
            let mut draw_bits = Vec::new();
            for j in 0..draws.ncols() {
                draw_bits.extend(draws.col(j).iter().map(|x| x.to_bits()));
            }
            reference.push(RoundResult {
                predict_diag: (bits(&diag.mean), bits(&diag.sd)),
                predict_exact: (bits(&exact.mean), bits(&exact.sd)),
                marginals,
                draw_bits,
            });
        }
    }

    // Reference 2: an unbatched (zero-window) service, queried sequentially.
    let unbatched =
        InlaService::new(result.clone().into_snapshot(&session).unwrap(), ServeConfig {
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        })
        .unwrap();
    for client in 0..CLIENTS {
        for round in 0..ROUNDS {
            let got = run_round(&unbatched, client, round);
            assert_eq!(
                got,
                reference[client * ROUNDS + round],
                "unbatched service diverged for client {client} round {round}"
            );
        }
    }

    // System under test: wide window + small max_batch, hammered by 12
    // threads at once so batches form with arbitrary mixed compositions.
    let service = InlaService::new(result.into_snapshot(&session).unwrap(), ServeConfig {
        batch_window: Duration::from_millis(5),
        max_batch: 6,
        workers: 4,
    })
    .unwrap();
    let results: Vec<Vec<RoundResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let service = &service;
                s.spawn(move || {
                    (0..ROUNDS).map(|round| run_round(service, client, round)).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (client, rounds) in results.iter().enumerate() {
        for (round, got) in rounds.iter().enumerate() {
            assert_eq!(
                *got,
                reference[client * ROUNDS + round],
                "batched concurrent service diverged for client {client} round {round}"
            );
        }
    }

    let stats = service.stats();
    assert_eq!(stats.requests as usize, CLIENTS * ROUNDS * 4);
    assert!(
        stats.batches < stats.requests,
        "expected coalescing under a 5ms window: {} batches for {} requests",
        stats.batches,
        stats.requests
    );
}

#[test]
fn zero_window_under_many_concurrent_clients_is_bitwise_identical() {
    // `batch_window: Duration::ZERO` means every leader closes its batch
    // immediately — under 12 concurrent clients most batches are singletons,
    // racing constantly on the admission queue. The determinism contract
    // must hold in this degenerate-batching regime too.
    let (model, theta0) = toy_model();
    let (session, result) = fit(&model, &theta0);

    let snapshot = session.snapshot(&result).unwrap();
    let sequential = InlaService::new(snapshot, ServeConfig {
        batch_window: Duration::ZERO,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut reference = Vec::with_capacity(CLIENTS * ROUNDS);
    for client in 0..CLIENTS {
        for round in 0..ROUNDS {
            reference.push(run_round(&sequential, client, round));
        }
    }

    let service = InlaService::new(result.into_snapshot(&session).unwrap(), ServeConfig {
        batch_window: Duration::ZERO,
        max_batch: 4,
        workers: 4,
    })
    .unwrap();
    let results: Vec<Vec<RoundResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let service = &service;
                s.spawn(move || {
                    (0..ROUNDS).map(|round| run_round(service, client, round)).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (client, rounds) in results.iter().enumerate() {
        for (round, got) in rounds.iter().enumerate() {
            assert_eq!(
                *got,
                reference[client * ROUNDS + round],
                "zero-window concurrent service diverged for client {client} round {round}"
            );
        }
    }
    assert_eq!(service.stats().requests as usize, CLIENTS * ROUNDS * 4);
}
