//! Fig. 4: strong scaling of DALIA vs INLA_DIST vs R-INLA on the univariate
//! spatio-temporal model MB1 (ns = 4002, nt = 250), 1 to 18 GPUs.

use dalia_bench::{build_instance, header, instance_session, row};
use dalia_core::InlaSettings;
use dalia_data::mb1;
use dalia_hpc::{dalia_iteration_time, gh200, inladist_iteration_time, rinla_iteration_time, xeon_fritz};

fn main() {
    let cfg = mb1();
    header("Fig. 4", "strong scaling on MB1 (univariate, ns=4002, nt=250)");

    // ----- Measured (scaled-down, single CPU core) -----
    println!("\n[measured] scaled-down MB1 (ns~120, nt=8), seconds per BFGS iteration:");
    let inst = build_instance(&cfg, 120, 8, 4);
    println!("  model: ns={} nt={} N={} obs={}", inst.model.dims.ns, inst.model.dims.nt,
             inst.model.dims.latent_dim(), inst.n_obs);
    for (name, settings) in [
        ("DALIA (BTA)", InlaSettings::dalia(1)),
        ("DALIA (BTA, S3=4)", InlaSettings::dalia(4)),
        ("INLA_DIST-like", InlaSettings::inladist_like()),
        ("R-INLA-like (sparse)", InlaSettings::rinla_like()),
    ] {
        let engine = instance_session(&inst, settings);
        let (total, solver) = engine.time_one_iteration(&inst.theta0).expect("evaluation failed");
        println!("  {name:<24} total {total:8.3} s   solver {solver:8.3} s");
    }

    // ----- Modeled at paper scale -----
    println!("\n[modeled] paper-scale MB1 on GH200 devices (seconds per iteration):");
    let dims = cfg.model_dims(cfg.nt);
    let hw = gh200();
    let rinla = rinla_iteration_time(&dims, 9, &xeon_fritz());
    println!("  R-INLA reference (Fritz, 9x8 threads): {:9.1} s/iter", rinla.total);
    println!("{}", row(&["GPUs", "DALIA s/iter", "INLA_DIST s/iter", "DALIA speedup vs R-INLA", "vs INLA_DIST"]
        .map(String::from)));
    for gpus in [1usize, 2, 4, 9, 18] {
        let d = dalia_iteration_time(&dims, gpus, &hw);
        let i = inladist_iteration_time(&dims, gpus, &hw);
        println!("{}", row(&[
            format!("{gpus}"),
            format!("{:.2}", d.total),
            format!("{:.2}", i.total),
            format!("{:.1}x", rinla.total / d.total),
            format!("{:.2}x", i.total / d.total),
        ]));
    }
    println!("\nPaper reference points: 12.6x over R-INLA on 1 GPU, 180x on 18 GPUs,");
    println!("~2x over INLA_DIST at 18 GPUs (DALIA 4.3 s/iter vs R-INLA 780 s/iter).");
}
