//! Fig. 8 and Sec. VI: the air-pollution application — joint modeling of
//! PM2.5, PM10 and O3 over a northern-Italy-like domain, spatial downscaling
//! of the coarse input grid, elevation effects and inter-pollutant
//! correlations.
//!
//! The CAMS reanalysis is replaced by a synthetic trivariate dataset with
//! known ground truth (elevation effects −0.45 / −0.55 / +1.27 µg/m³ per km
//! and a strong PM2.5–PM10 coupling), so in addition to the paper's summary
//! quantities this harness reports recovery errors.

use dalia_bench::header;
use dalia_core::{predict, response_correlations, InlaEngine, InlaSettings};
use dalia_data::{generate_pollution_dataset, observation_grid};
use dalia_mesh::{Domain, TriangleMesh};
use dalia_model::{CoregionalModel, ModelHyper, PredictionTarget, ThetaPrior};

fn main() {
    header("Fig. 8 / Sec. VI", "air-pollution application: trivariate downscaling");
    let domain = Domain::northern_italy_like();

    // Scaled-down AP1: coarse observation grid (the "0.1 degree CAMS grid"),
    // a modest mesh and a handful of days.
    let nt = 6;
    let coarse = observation_grid(&domain, 10, 5);
    let (obs, truth) = generate_pollution_dataset(&domain, &coarse, nt, 42);
    let mesh = TriangleMesh::with_approx_nodes(domain, 72);
    println!("\nmesh nodes: {}, coarse grid cells: {}, days: {nt}, observations: {}",
             mesh.n_nodes(), coarse.len(), obs.len());

    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, nt, 1.0, 3, 2, obs).expect("model must build"),
    );
    let mut hyper0 = ModelHyper::default_for(3, 0.3 * domain.width(), 4.0);
    hyper0.lambdas = vec![0.8, -0.3, -0.2];
    let theta0 = hyper0.to_theta();

    let mut settings = InlaSettings::dalia(2);
    settings.max_iter = 3;
    let session = InlaEngine::builder(&model)
        .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings");
    let result = session.run(&theta0).expect("INLA run failed");
    println!("BFGS iterations: {}, f_obj at mode: {:.2}, {:.1} s/iteration",
             result.trace.len(), result.fobj_at_mode, result.seconds_per_iteration);

    // --- Elevation effects (paper: -0.45 PM2.5, -0.55 PM10, +1.27 O3 per km) ---
    println!("\nElevation effects (posterior mean [2.5%, 97.5%], true value):");
    let names = ["PM2.5", "PM10", "O3"];
    for fx in &result.fixed_effects {
        if fx.effect == 1 {
            println!(
                "  {:<6} {:+.3} [{:+.3}, {:+.3}]   (true {:+.2})",
                names[fx.process], fx.mean, fx.q025, fx.q975, truth.elevation_effects[fx.process]
            );
        }
    }

    // --- Inter-pollutant correlations (paper: 0.97, -0.61, -0.63) ---
    let corr = response_correlations(&result.hyper_mode);
    let corr_true = response_correlations(&truth.hyper);
    println!("\nInter-pollutant correlations (estimated / ground truth):");
    println!("  corr(PM2.5, PM10) = {:+.2} / {:+.2}", corr[(1, 0)], corr_true[(1, 0)]);
    println!("  corr(PM2.5, O3)   = {:+.2} / {:+.2}", corr[(2, 0)], corr_true[(2, 0)]);
    println!("  corr(PM10,  O3)   = {:+.2} / {:+.2}", corr[(2, 1)], corr_true[(2, 1)]);

    // --- Spatial downscaling: predict O3 on a 5x finer grid (Fig. 8) ---
    let fine = observation_grid(&domain, 50, 25);
    for day in [0usize, nt - 1] {
        let targets: Vec<PredictionTarget> = fine
            .iter()
            .map(|p| PredictionTarget {
                var: 2,
                t: day,
                loc: *p,
                covariates: vec![1.0, dalia_data::elevation_km(&domain, p)],
            })
            .collect();
        let pred = predict(&model, &result.hyper_mode, &result.latent, &targets)
            .expect("prediction failed");
        let mean: f64 = pred.mean.iter().sum::<f64>() / pred.mean.len() as f64;
        let min = pred.mean.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = pred.mean.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sd: f64 = pred.sd.iter().sum::<f64>() / pred.sd.len() as f64;
        println!(
            "\nDownscaled O3 surface, day {day}: {} fine cells (25x the coarse resolution)",
            fine.len()
        );
        println!("  predictive mean field: avg {mean:.2}, range [{min:.2}, {max:.2}], avg sd {sd:.2}");
    }
    println!("\nThe coarse input resolves {} cells; the downscaled surface resolves {} cells,",
             coarse.len(), fine.len());
    println!("reproducing the paper's 25-fold increase in spatial detail (0.1° -> 0.02°).");
}
