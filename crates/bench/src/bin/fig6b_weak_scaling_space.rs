//! Fig. 6b/6c: weak scaling of the trivariate coregional model through spatial
//! mesh refinement (dataset WA2: 72 -> 4485 mesh nodes, 1 -> 496 GPUs),
//! including the strategy switchover S1 -> S1+S3 -> S1+S2+S3 driven by device
//! memory.

use dalia_bench::{build_instance, header, instance_session, row};
use dalia_core::InlaSettings;
use dalia_data::{wa2, wa2_mesh_ladder};
use dalia_hpc::{dalia_iteration_time, gh200, parallel_efficiency, rinla_iteration_time, xeon_fritz};
use dalia_mesh::{Domain, TriangleMesh};

fn main() {
    let cfg = wa2();
    header("Fig. 6b", "weak scaling in space via mesh refinement (WA2, trivariate)");

    // ----- Fig. 6c: the mesh refinement ladder -----
    println!("\n[Fig. 6c] mesh refinement ladder over the northern-Italy-like domain:");
    println!("{}", row(&["target nodes", "mesh nodes", "triangles"].map(String::from)));
    for target in wa2_mesh_ladder() {
        let mesh = TriangleMesh::with_approx_nodes(Domain::northern_italy_like(), target);
        println!("{}", row(&[
            format!("{target}"),
            format!("{}", mesh.n_nodes()),
            format!("{}", mesh.n_triangles()),
        ]));
    }

    // ----- Measured (scaled-down ladder) -----
    println!("\n[measured] scaled-down ladder (nt=3), seconds per BFGS iteration:");
    println!("{}", row(&["ns (approx)", "DALIA s/iter", "solver share"].map(String::from)));
    for ns in [24usize, 48, 96] {
        let inst = build_instance(&cfg, ns, 3, 8);
        let engine = instance_session(&inst, InlaSettings::dalia(1));
        let (total, solver) = engine.time_one_iteration(&inst.theta0).expect("evaluation failed");
        println!("{}", row(&[
            format!("{}", inst.model.dims.ns),
            format!("{total:.3}"),
            format!("{:.0}%", 100.0 * solver / total),
        ]));
    }

    // ----- Modeled at paper scale -----
    println!("\n[modeled] paper-scale WA2 on GH200 (mesh refinement with growing device counts):");
    println!("{}", row(&["ns", "GPUs", "allocation S1xS2xS3", "DALIA s/iter", "speedup vs R-INLA", "parallel eff."]
        .map(String::from)));
    let hw = gh200();
    let cpu = xeon_fritz();
    let ladder = wa2_mesh_ladder();
    let gpus_per_level = [1usize, 8, 64, 496];
    let mut t_ref: Option<f64> = None;
    for (ns, gpus) in ladder.iter().zip(gpus_per_level.iter()) {
        let mut dims = cfg.model_dims(cfg.nt);
        dims.ns = *ns;
        let d = dalia_iteration_time(&dims, *gpus, &hw);
        let r = rinla_iteration_time(&dims, 8, &cpu);
        let t1 = *t_ref.get_or_insert(d.total);
        println!("{}", row(&[
            format!("{ns}"),
            format!("{gpus}"),
            format!("{}x{}x{}", d.allocation.s1, d.allocation.s2, d.allocation.s3),
            format!("{:.2}", d.total),
            format!("{:.1}x", r.total / d.total),
            format!("{:.1}%", 100.0 * parallel_efficiency(t1, d.total, *gpus)),
        ]));
    }
    println!("\nPaper reference points: 1.95x over R-INLA on the coarsest mesh, 168x at 64 GPUs,");
    println!("51.2% parallel efficiency at 496 GPUs; S3 engaged when the block-dense matrix");
    println!("no longer fits on one device.");
}
