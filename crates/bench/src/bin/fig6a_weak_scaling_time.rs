//! Fig. 6a: weak scaling of the trivariate coregional model through the time
//! domain (dataset WA1: ns = 1247, nt = 2 .. 512, 1 .. 248 GPUs).

use dalia_bench::{build_instance, header, instance_session, row};
use dalia_core::InlaSettings;
use dalia_data::wa1;
use dalia_hpc::{dalia_iteration_time, gh200, rinla_iteration_time, xeon_fritz};

fn main() {
    let cfg = wa1();
    header("Fig. 6a", "weak scaling in time, trivariate coregional model (WA1)");

    // ----- Measured (scaled-down) -----
    println!("\n[measured] scaled-down WA1 (ns~40), seconds per BFGS iteration:");
    println!("{}", row(&["nt", "DALIA s/iter", "solver share"].map(String::from)));
    for nt in [2usize, 4, 8] {
        let inst = build_instance(&cfg, 40, nt, 6);
        let engine = instance_session(&inst, InlaSettings::dalia(1));
        let (total, solver) = engine.time_one_iteration(&inst.theta0).expect("evaluation failed");
        println!("{}", row(&[
            format!("{nt}"),
            format!("{total:.3}"),
            format!("{:.0}%", 100.0 * solver / total),
        ]));
    }

    // ----- Modeled at paper scale -----
    println!("\n[modeled] paper-scale WA1 on GH200 (weak scaling: nt grows with devices):");
    println!("{}", row(&["nt", "GPUs", "DALIA s/iter", "R-INLA s/iter", "speedup", "solver share"]
        .map(String::from)));
    let hw = gh200();
    let cpu = xeon_fritz();
    let series = [
        (2usize, 1usize), (4, 2), (8, 4), (16, 8), (32, 16), (64, 31), (128, 62), (256, 124), (512, 248),
    ];
    for (nt, gpus) in series {
        let dims = cfg.model_dims(nt);
        let d = dalia_iteration_time(&dims, gpus, &hw);
        let r = rinla_iteration_time(&dims, 8, &cpu);
        println!("{}", row(&[
            format!("{nt}"),
            format!("{gpus}"),
            format!("{:.2}", d.total),
            format!("{:.1}", r.total),
            format!("{:.1}x", r.total / d.total),
            format!("{:.0}%", 100.0 * d.solver / d.total),
        ]));
    }
    println!("\nPaper reference points: 1.48x over R-INLA at nt=2 (1 GPU), >100x from 32");
    println!("time-steps (16 GPUs) onward, 124x at nt=512 (248 GPUs) on an 8x larger model.");
}
