//! Fig. 5: weak-scaling parallel efficiency of the distributed Cholesky
//! factorization, selected inversion and triangular solve (dataset MB2:
//! ns = 1675, 128 time steps per process), with and without load balancing.

use dalia_bench::{header, row};
use dalia_hpc::{
    d_bta_factor_time, d_bta_selinv_time, d_bta_solve_time, gh200, weak_efficiency, BtaDims,
};
use serinv::{d_pobtaf, d_pobtas, d_pobtasi, pobtaf, pobtas, pobtasi, testing, Partitioning};
use std::time::Instant;

fn main() {
    header("Fig. 5", "distributed solver weak scaling (MB2: ns=1675, 128 steps/process)");

    // ----- Measured (scaled-down, partitions executed on Rayon threads) -----
    println!("\n[measured] scaled-down blocks (b=48, a=6, 12 steps/partition), seconds:");
    println!("{}", row(&["P", "pobtaf", "pobtas", "pobtasi", "d_pobtaf", "d_pobtas", "d_pobtasi"]
        .map(String::from)));
    for p in [1usize, 2, 4] {
        let n = 12 * p;
        let m = testing::test_matrix(n, 48, 6, 3);
        let rhs0 = testing::test_rhs(m.dim(), 1);
        let t0 = Instant::now();
        let f = pobtaf(&m).unwrap();
        let t_f = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut r = rhs0.clone();
        pobtas(&f, &mut r);
        let t_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = pobtasi(&f);
        let t_i = t0.elapsed().as_secs_f64();

        let part = Partitioning::load_balanced(n, p, 1.6);
        let t0 = Instant::now();
        let df = d_pobtaf(&m, &part).unwrap();
        let dt_f = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut r = rhs0.clone();
        d_pobtas(&df, &mut r);
        let dt_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = d_pobtasi(&df);
        let dt_i = t0.elapsed().as_secs_f64();
        println!("{}", row(&[
            format!("{p}"),
            format!("{t_f:.4}"), format!("{t_s:.4}"), format!("{t_i:.4}"),
            format!("{dt_f:.4}"), format!("{dt_s:.4}"), format!("{dt_i:.4}"),
        ]));
    }

    // ----- Modeled at paper scale -----
    let hw = gh200();
    let base = BtaDims { n: 128, b: 1675, a: 6 };
    let t1_f = d_bta_factor_time(&base, 1, 1.0, &hw);
    let t1_i = d_bta_selinv_time(&base, 1, 1.0, &hw);
    let t1_s = d_bta_solve_time(&base, 1, 1.0, &hw, 1);
    for lb in [1.0f64, 1.6] {
        println!("\n[modeled] weak-scaling parallel efficiency on GH200, load balance = {lb}:");
        println!("{}", row(&["GPUs", "factorization", "selected inv.", "triangular solve"]
            .map(String::from)));
        for p in [1usize, 2, 4, 8, 16] {
            let d = BtaDims { n: 128 * p, b: 1675, a: 6 };
            let ef = weak_efficiency(t1_f, d_bta_factor_time(&d, p, lb, &hw));
            let ei = weak_efficiency(t1_i, d_bta_selinv_time(&d, p, lb, &hw));
            let es = weak_efficiency(t1_s, d_bta_solve_time(&d, p, lb, &hw, 1));
            println!("{}", row(&[
                format!("{p}"),
                format!("{:.1}%", 100.0 * ef),
                format!("{:.1}%", 100.0 * ei),
                format!("{:.1}%", 100.0 * es),
            ]));
        }
    }
    println!("\nPaper reference points at 16 GPUs: factorization 52.6% -> 58.8% with lb=1.6,");
    println!("selected inversion 52.8% -> 58.3%, triangular solve ~31.6%.");
}
