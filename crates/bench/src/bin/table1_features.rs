//! Table I: qualitative feature comparison of R-INLA, INLA_DIST and DALIA.

use dalia_bench::{header, row};

fn main() {
    header("Table I", "feature comparison of the INLA implementations");
    for r in dalia_core::feature_table() {
        println!("{}", row(&r));
    }
    println!();
    println!("DALIA-RS implements all three configurations as engine presets:");
    println!("  InlaSettings::rinla_like()   -> general sparse Cholesky, shared-memory S1 only");
    println!("  InlaSettings::inladist_like()-> sequential BTA solver, S1 + S2");
    println!("  InlaSettings::dalia(P)       -> distributed BTA solver, S1 + S2 + S3(P)");
}
