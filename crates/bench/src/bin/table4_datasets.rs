//! Table IV: dataset configurations used in the performance evaluation.

use dalia_bench::{header, row};
use dalia_data::all_configs;

fn main() {
    header("Table IV", "datasets used in the performance evaluation");
    println!(
        "{}",
        row(&["name", "dim(theta)/nv", "ns/nr", "nt", "N (latent dim)", "role"]
            .map(String::from))
    );
    for c in all_configs() {
        let nt_str = if c.nt == c.nt_max {
            format!("{}", c.nt)
        } else {
            format!("{}-{}", c.nt, c.nt_max)
        };
        let n_str = if c.nt == c.nt_max {
            format!("{}", c.latent_dim(c.nt))
        } else {
            format!("{}-{}", c.latent_dim(c.nt), c.latent_dim(c.nt_max))
        };
        println!(
            "{}",
            row(&[
                c.name.to_string(),
                format!("{}/{}", c.dim_theta, c.nv),
                format!("{}/{}", c.ns, c.nr),
                nt_str,
                n_str,
                c.role.to_string(),
            ])
        );
    }
}
