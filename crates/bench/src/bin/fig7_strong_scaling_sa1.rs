//! Fig. 7: application-level strong scaling of the trivariate coregional model
//! SA1 (ns = 1675, nt = 192) from 1 to 496 GPUs, with parallel efficiency and
//! the R-INLA reference runtime.

use dalia_bench::{build_instance, header, instance_session, row};
use dalia_core::InlaSettings;
use dalia_data::sa1;
use dalia_hpc::{dalia_iteration_time, gh200, parallel_efficiency, rinla_iteration_time, xeon_fritz};

fn main() {
    let cfg = sa1();
    header("Fig. 7", "strong scaling on SA1 (trivariate, ns=1675, nt=192)");

    // ----- Measured (scaled-down): solver backends on a fixed small model -----
    println!("\n[measured] scaled-down SA1 (ns~40, nt=6), seconds per BFGS iteration:");
    let inst = build_instance(&cfg, 40, 6, 9);
    for (name, settings) in [
        ("DALIA (S3=1)", InlaSettings::dalia(1)),
        ("DALIA (S3=2)", InlaSettings::dalia(2)),
        ("DALIA (S3=3)", InlaSettings::dalia(3)),
        ("R-INLA-like", InlaSettings::rinla_like()),
    ] {
        let engine = instance_session(&inst, settings);
        let (total, solver) = engine.time_one_iteration(&inst.theta0).expect("evaluation failed");
        println!("  {name:<16} total {total:8.3} s   solver {solver:8.3} s");
    }

    // ----- Modeled at paper scale -----
    println!("\n[modeled] paper-scale SA1 on GH200:");
    let hw = gh200();
    let dims = cfg.model_dims(cfg.nt);
    let rinla = rinla_iteration_time(&dims, 8, &xeon_fritz());
    println!("  R-INLA reference (Fritz): {:.0} s/iter (paper: > 40 min/iter)", rinla.total);
    println!("{}", row(&["GPUs", "allocation", "s/iter", "parallel eff.", "speedup vs R-INLA"]
        .map(String::from)));
    let t1 = dalia_iteration_time(&dims, 1, &hw).total;
    for gpus in [1usize, 2, 4, 8, 16, 31, 62, 124, 248, 496] {
        let d = dalia_iteration_time(&dims, gpus, &hw);
        println!("{}", row(&[
            format!("{gpus}"),
            format!("{}x{}x{}", d.allocation.s1, d.allocation.s2, d.allocation.s3),
            format!("{:.2}", d.total),
            format!("{:.1}%", 100.0 * parallel_efficiency(t1, d.total, gpus)),
            format!("{:.0}x", rinla.total / d.total),
        ]));
    }
    println!("\nPaper reference points: ~4 min/iter on 1 GPU, near-perfect scaling to 31 GPUs,");
    println!("85.6% efficiency at 62 GPUs, 28.3% at 496 GPUs, three orders of magnitude over R-INLA.");
}
