//! # dalia-bench — benchmark harnesses for every table and figure
//!
//! One binary per table/figure of the paper's evaluation section (see
//! `src/bin/`), plus Criterion micro-benchmarks (`benches/`). Each harness
//! prints two kinds of numbers:
//!
//! * **measured** — wall-clock timings of the real Rust implementation on a
//!   scaled-down version of the paper's dataset (this machine has one CPU core
//!   and no GPU, so absolute values are not comparable to the paper), and
//! * **modeled** — the analytic GH200/Alps performance model of `dalia-hpc`
//!   evaluated at the paper's full scale, which is what reproduces the shape
//!   of the published scaling curves.

use dalia_core::{InlaEngine, InlaSession, InlaSettings};
use dalia_data::{generate_pollution_dataset, observation_grid, DatasetConfig};
use dalia_mesh::{Domain, TriangleMesh};
use dalia_model::{CoregionalModel, ModelHyper, Observation, ThetaPrior};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scaled-down instantiation of one of the paper's datasets, ready to run.
pub struct ScaledInstance {
    /// The model (mesh, observations, design).
    pub model: std::sync::Arc<CoregionalModel>,
    /// A reasonable starting hyperparameter vector.
    pub theta0: Vec<f64>,
    /// The mesh used.
    pub mesh: TriangleMesh,
    /// Number of observations.
    pub n_obs: usize,
}

/// Build a runnable scaled-down instance of a Table IV dataset configuration.
///
/// `ns_target` and `nt` control the scaled size; observations are placed on a
/// regular grid with roughly 1.5 observations per mesh node per time step per
/// response variable (mirroring the dense CAMS grids of the application).
pub fn build_instance(config: &DatasetConfig, ns_target: usize, nt: usize, seed: u64) -> ScaledInstance {
    let domain = Domain::northern_italy_like();
    let mesh = TriangleMesh::with_approx_nodes(domain, ns_target);
    let nv = config.nv;
    let nr = config.nr.max(1);

    let obs: Vec<Observation> = if nv == 3 {
        let grid_n = ((mesh.n_nodes() as f64).sqrt() * 1.2).ceil() as usize;
        let grid = observation_grid(&domain, grid_n.max(3), (grid_n / 2).max(2));
        let (mut obs, _) = generate_pollution_dataset(&domain, &grid, nt, seed);
        // Trim or pad covariates to nr entries.
        for o in &mut obs {
            o.covariates.resize(nr, 0.5);
        }
        obs
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        let grid_n = ((mesh.n_nodes() as f64).sqrt() * 1.2).ceil() as usize;
        let grid = observation_grid(&domain, grid_n.max(3), (grid_n / 2).max(2));
        let mut obs = Vec::new();
        for t in 0..nt {
            for p in &grid {
                let covs: Vec<f64> = (0..nr).map(|_| rng.random_range(-1.0..1.0)).collect();
                let value = (p.x * 0.8 + p.y * 0.3 + t as f64 * 0.1).sin()
                    + covs.iter().sum::<f64>() * 0.4
                    + rng.random_range(-0.1..0.1);
                obs.push(Observation { var: 0, t, loc: *p, covariates: covs, value });
            }
        }
        obs
    };

    let n_obs = obs.len();
    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, nt, 1.0, nv, nr, obs).expect("scaled instance must be valid"),
    );
    let mut hyper = ModelHyper::default_for(nv, 0.3 * domain.width(), 4.0);
    if nv == 3 {
        hyper.lambdas = vec![0.8, -0.3, -0.2];
    }
    let theta0 = hyper.to_theta();
    ScaledInstance { model, theta0, mesh, n_obs }
}

/// Build a stateful [`InlaSession`] for a scaled instance with a weakly
/// informative prior centered at its starting hyperparameters.
pub fn instance_session(inst: &ScaledInstance, settings: InlaSettings) -> InlaSession {
    InlaEngine::builder(&inst.model)
        .prior(ThetaPrior::weakly_informative(&inst.theta0, 3.0))
        .settings(settings)
        .build()
        .expect("scaled-instance settings must validate")
}

/// Format a table row with fixed-width columns.
pub fn row(cells: &[String]) -> String {
    cells.iter().map(|c| format!("{c:>16}")).collect::<Vec<_>>().join(" | ")
}

/// Print a standard harness header.
pub fn header(figure: &str, description: &str) {
    println!("==============================================================================");
    println!("{figure}: {description}");
    println!("==============================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_data::{sa1, wa1};

    #[test]
    fn scaled_instance_builds_for_trivariate_config() {
        let inst = build_instance(&sa1(), 40, 3, 1);
        assert_eq!(inst.model.dims.nv, 3);
        assert!(inst.n_obs > 0);
        assert!(inst.model.dims.ns >= 16);
    }

    #[test]
    fn scaled_instance_builds_for_univariate_like_config() {
        let mut cfg = wa1();
        cfg.nv = 1;
        cfg.dim_theta = 4;
        let inst = build_instance(&cfg, 30, 2, 2);
        assert_eq!(inst.model.dims.nv, 1);
        assert_eq!(inst.theta0.len(), 4);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".to_string(), "b".to_string()]);
        assert!(r.contains('|'));
    }
}
