//! Criterion micro-benchmarks of the structured BTA solver kernels
//! (sequential and distributed), the measured counterpart of Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serinv::{d_pobtaf, d_pobtas, d_pobtasi, pobtaf, pobtas, pobtasi, testing, Partitioning};
use std::hint::black_box;

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("serinv_sequential");
    group.sample_size(10);
    for &(n, b, a) in &[(16usize, 24usize, 4usize), (32, 24, 4)] {
        let m = testing::test_matrix(n, b, a, 1);
        let f = pobtaf(&m).unwrap();
        let rhs = testing::test_rhs(m.dim(), 1);
        group.bench_with_input(BenchmarkId::new("pobtaf", format!("n{n}_b{b}")), &m, |bencher, m| {
            bencher.iter(|| black_box(pobtaf(m).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("pobtas", format!("n{n}_b{b}")), &f, |bencher, f| {
            bencher.iter(|| {
                let mut r = rhs.clone();
                pobtas(f, &mut r);
                black_box(r);
            });
        });
        group.bench_with_input(BenchmarkId::new("pobtasi", format!("n{n}_b{b}")), &f, |bencher, f| {
            bencher.iter(|| black_box(pobtasi(f)));
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("serinv_distributed");
    group.sample_size(10);
    let (n, b, a) = (32usize, 24usize, 4usize);
    let m = testing::test_matrix(n, b, a, 2);
    let rhs = testing::test_rhs(m.dim(), 1);
    for &p in &[1usize, 2, 4] {
        let part = Partitioning::load_balanced(n, p, 1.6);
        group.bench_with_input(BenchmarkId::new("d_pobtaf", format!("P{p}")), &part, |bencher, part| {
            bencher.iter(|| black_box(d_pobtaf(&m, part).unwrap()));
        });
        let f = d_pobtaf(&m, &part).unwrap();
        group.bench_with_input(BenchmarkId::new("d_pobtas", format!("P{p}")), &f, |bencher, f| {
            bencher.iter(|| {
                let mut r = rhs.clone();
                d_pobtas(f, &mut r);
                black_box(r);
            });
        });
        group.bench_with_input(BenchmarkId::new("d_pobtasi", format!("P{p}")), &f, |bencher, f| {
            bencher.iter(|| black_box(d_pobtasi(f)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_distributed);
criterion_main!(benches);
