//! Streaming-window bench: amortized per-update cost of advancing a fitted
//! system by one time slice (`StreamingWindow::append_slices` with `k = 1`,
//! incremental trailing-block refactorization + re-pin + re-snapshot)
//! versus the full-refit alternative (build a fresh session on the extended
//! window, re-run the BFGS fit warm-started at the current mode, snapshot).
//!
//! The instance is SA1-shaped (trivariate coregional blocks, `b = 3·n_s`,
//! `dim θ = 15` — the paper's application-level strong-scaling dataset,
//! scaled down), with observations produced by `dalia_data::StreamingSource`
//! so the streamed slices are bit-identical to what a batch refit would see.
//!
//! Running this bench (`cargo bench -p dalia-bench --bench stream_bench`)
//! prints a table and rewrites `BENCH_stream.json` at the repository root.
//! CI runs it and asserts the acceptance gate: **≥ 3× amortized per-update
//! speedup at `k = 1`** on the largest window (skipped when fewer than 4
//! cores are available or `DALIA_BENCH_NO_ASSERT` is set).

use dalia_core::{InlaEngine, InlaSettings};
use dalia_data::{observation_grid, StreamingSource};
use dalia_mesh::{Domain, TriangleMesh};
use dalia_model::{CoregionalModel, ModelHyper, Observation, ThetaPrior};
use std::sync::Arc;
use std::time::Instant;

/// Window sizes (time slices) to advance through.
const WINDOWS: &[usize] = &[6, 10, 14];
/// Streaming updates (each `k = 1`) measured per window size.
const UPDATES: usize = 3;

struct Record {
    nt: usize,
    block_size: usize,
    stream_seconds: f64,
    refit_seconds: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.refit_seconds / self.stream_seconds
    }
}

fn settings() -> InlaSettings {
    let mut s = InlaSettings::dalia(1);
    s.max_iter = 2;
    s
}

fn build_model(mesh: &TriangleMesh, nt: usize, obs: Vec<Observation>) -> Arc<CoregionalModel> {
    Arc::new(CoregionalModel::new(mesh, nt, 1.0, 3, 2, obs).expect("stream bench model"))
}

fn bench_window(mesh: &TriangleMesh, domain: &Domain, nt: usize) -> Record {
    let grid = observation_grid(domain, 5, 4);
    let mut source = StreamingSource::new(domain, &grid, 42);
    let mut obs = Vec::new();
    for _ in 0..nt {
        obs.extend(source.next_slice());
    }
    let model = build_model(mesh, nt, obs.clone());
    let theta0 = ModelHyper::default_for(3, 0.3 * domain.width(), 4.0).to_theta();
    let prior = ThetaPrior::weakly_informative(&theta0, 3.0);

    let session = InlaEngine::builder(&model)
        .prior(prior.clone())
        .settings(settings())
        .build()
        .expect("stream bench session");
    let result = session.run(&theta0).expect("stream bench fit");

    // The slices both paths will consume, pre-drawn so the two timed loops
    // see identical data and the generator cost stays outside the timings.
    let slices: Vec<Vec<Observation>> = (0..UPDATES).map(|_| source.next_slice()).collect();

    // Streaming path: advance the fitted window slice by slice, re-snapshot
    // after each update — the serving-layer loop.
    let mut window = session.streaming_window(&result).expect("streaming window");
    let t0 = Instant::now();
    for slice in &slices {
        window.append_slices(1, slice.clone()).expect("append slice");
        std::hint::black_box(window.snapshot().expect("window snapshot"));
    }
    let stream_seconds = t0.elapsed().as_secs_f64() / UPDATES as f64;

    // Full-refit path: what advancing the window costs without the streaming
    // kernels — rebuild the model on the extended window, re-run the fit
    // (warm-started at the current mode, same settings), snapshot.
    let mut theta = result.hyper.mode.clone();
    let t0 = Instant::now();
    for (u, slice) in slices.iter().enumerate() {
        obs.extend(slice.iter().cloned());
        let refit_model = build_model(mesh, nt + u + 1, obs.clone());
        let refit_session = InlaEngine::builder(&refit_model)
            .prior(prior.clone())
            .settings(settings())
            .build()
            .expect("refit session");
        let refit = refit_session.run(&theta).expect("refit");
        std::hint::black_box(refit_session.snapshot(&refit).expect("refit snapshot"));
        theta = refit.hyper.mode.clone();
    }
    let refit_seconds = t0.elapsed().as_secs_f64() / UPDATES as f64;

    Record { nt, block_size: model.dims.block_size(), stream_seconds, refit_seconds }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let enforce_gate = std::env::var_os("DALIA_BENCH_NO_ASSERT").is_none() && cores >= 4;

    let domain = Domain::unit_square();
    let mesh = TriangleMesh::with_approx_nodes(domain, 36);

    println!(
        "streaming windows: amortized k=1 update vs full refit \
         (trivariate, b = 3·ns = {}, {} updates per window)\n",
        3 * mesh.n_nodes(),
        UPDATES
    );
    println!(
        "{:>6} {:>8} {:>16} {:>16} {:>9}",
        "nt", "b", "stream_ms/upd", "refit_ms/upd", "speedup"
    );
    let records: Vec<Record> =
        WINDOWS.iter().map(|&nt| bench_window(&mesh, &domain, nt)).collect();
    for r in &records {
        println!(
            "{:>6} {:>8} {:>16.2} {:>16.2} {:>8.1}x",
            r.nt,
            r.block_size,
            r.stream_seconds * 1e3,
            r.refit_seconds * 1e3,
            r.speedup()
        );
    }

    let mut json = String::from(
        "{\n  \"bench\": \"stream_bench\",\n  \
         \"note\": \"amortized cost of advancing a fitted trivariate (SA1-shaped) window by one \
         time slice: StreamingWindow::append_slices(k=1) + re-snapshot, versus a full warm-started \
         refit of the extended window; on a >=4-core host the largest window must show >=3x\",\n  \
         \"updates_per_window\": 3,\n  \"records\": [\n",
    );
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nt\": {}, \"block_size\": {}, \"stream_seconds_per_update\": {:.6}, \
             \"refit_seconds_per_update\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.nt,
            r.block_size,
            r.stream_seconds,
            r.refit_seconds,
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(path, json).expect("write BENCH_stream.json");
    println!("\nwrote {path}");

    let gate = records.last().expect("no records");
    if enforce_gate {
        assert!(
            gate.speedup() >= 3.0,
            "streaming gate: amortized k=1 update must be >=3x cheaper than a full refit \
             at nt = {}, got {:.1}x",
            gate.nt,
            gate.speedup()
        );
        println!(
            "gate: streaming {:.1}x >= 3x at nt = {} — ok",
            gate.speedup(),
            gate.nt
        );
    } else {
        println!(
            "gate: skipped (cores = {cores}, DALIA_BENCH_NO_ASSERT = {})",
            std::env::var_os("DALIA_BENCH_NO_ASSERT").is_some()
        );
    }
}
