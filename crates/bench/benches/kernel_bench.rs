//! Achieved-GFLOP/s comparison of the blocked, packed level-3 kernels in
//! `dalia_la` against the retained naive reference kernels, across the block
//! shapes the BTA solver actually produces (square diagonal blocks of
//! `b = n_v·n_s` lanes, skinny `a × b` arrow panels).
//!
//! The run starts with the blocking autotuner (`dalia_la::tune`): every
//! supported kernel tier is swept over the MC/KC/NC candidate grid and the
//! winners are persisted to `target/dalia_tune_cache.txt` (the same cache the
//! library loads at startup; CI uploads it as an artifact). The gemm table
//! then reports 256³/512³ per tier so the dispatch ladder is visible in the
//! snapshot, and a warm-session `pobtaf` benchmark pins the end-to-end win of
//! the tuned tier + blocking + cross-factorization packing reuse over the
//! previous defaults.
//!
//! Running this bench (`cargo bench -p dalia-bench --bench kernel_bench`)
//! prints a table and rewrites `BENCH_kernels.json` at the repository root so
//! the kernel performance trajectory is tracked in-repo. CI uploads the file
//! as a workflow artifact. See `docs/performance.md` for how to read the
//! numbers.

use dalia_la::blas::{self, reference, PackBuffer, Side, Trans, Triangle};
use dalia_la::tune::{self, BlockConfig};
use dalia_la::{chol, KernelTier, Matrix};
use serinv::testing::test_matrix;
use serinv::pobtaf_with;
use std::time::Instant;

/// Deterministic dense test matrix with entries in [-1, 1].
fn test_mat(m: usize, n: usize, seed: usize) -> Matrix {
    Matrix::from_fn(m, n, |i, j| {
        let v = (i * 31 + j * 17 + seed * 7) % 23;
        (v as f64) / 11.5 - 1.0
    })
}

/// Well-conditioned lower-triangular matrix.
fn test_lower(n: usize, seed: usize) -> Matrix {
    let mut l = test_mat(n, n, seed);
    for j in 0..n {
        for i in 0..j {
            l[(i, j)] = 0.0;
        }
        l[(j, j)] = 2.0 + l[(j, j)].abs();
    }
    l
}

/// Deterministic SPD matrix (diagonally dominant).
fn test_spd(n: usize, seed: usize) -> Matrix {
    let mut a = test_mat(n, n, seed);
    a.symmetrize();
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Seconds per call: best of three timed batches, each batch long enough to
/// be clock-resolution safe.
fn time_secs(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    let mut reps = 1usize;
    for _ in 0..3 {
        loop {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt < 0.03 {
                reps *= 2;
                continue;
            }
            best = best.min(dt / reps as f64);
            break;
        }
    }
    best
}

struct Record {
    kernel: &'static str,
    tier: &'static str,
    shape: String,
    flops: u64,
    ref_secs: f64,
    blk_secs: f64,
}

impl Record {
    fn ref_gflops(&self) -> f64 {
        self.flops as f64 / self.ref_secs / 1e9
    }
    fn blk_gflops(&self) -> f64 {
        self.flops as f64 / self.blk_secs / 1e9
    }
    fn speedup(&self) -> f64 {
        self.ref_secs / self.blk_secs
    }
}

fn active_tier_name() -> &'static str {
    dalia_la::kernel_tier().name()
}

fn bench_gemm(records: &mut Vec<Record>, m: usize, k: usize, n: usize) {
    let a = test_mat(m, k, 1);
    let b = test_mat(k, n, 2);
    let mut c = Matrix::zeros(m, n);
    let mut pack = PackBuffer::new();
    let blk_secs = time_secs(|| {
        blas::gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c)
    });
    let ref_secs = time_secs(|| reference::gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c));
    records.push(Record {
        kernel: "gemm",
        tier: active_tier_name(),
        shape: format!("{m}x{k}x{n}"),
        flops: blas::gemm_flops(m, k, n),
        ref_secs,
        blk_secs,
    });
}

fn bench_syrk(records: &mut Vec<Record>, n: usize, k: usize) {
    let a = test_mat(n, k, 3);
    let mut c = Matrix::zeros(n, n);
    let mut pack = PackBuffer::new();
    let blk_secs = time_secs(|| blas::syrk_lower_with(&mut pack, Trans::No, 1.0, &a, 0.0, &mut c));
    let ref_secs = time_secs(|| reference::syrk_lower(Trans::No, 1.0, &a, 0.0, &mut c));
    records.push(Record {
        kernel: "syrk_lower",
        tier: active_tier_name(),
        shape: format!("{n}x{n} k={k}"),
        flops: blas::gemm_flops(n, k, n) / 2,
        ref_secs,
        blk_secs,
    });
}

fn bench_trsm(records: &mut Vec<Record>, n: usize, nrhs: usize) {
    let l = test_lower(n, 4);
    let b0 = test_mat(nrhs, n, 5);
    let mut b = b0.clone();
    let mut pack = PackBuffer::new();
    // The factorization hot path: B := B L^{-T}.
    let blk_secs = time_secs(|| {
        b.as_mut_slice().copy_from_slice(b0.as_slice());
        blas::trsm_with(&mut pack, Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b)
    });
    let ref_secs = time_secs(|| {
        b.as_mut_slice().copy_from_slice(b0.as_slice());
        reference::trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b)
    });
    records.push(Record {
        kernel: "trsm_right_lt",
        tier: active_tier_name(),
        shape: format!("n={n} rhs={nrhs}"),
        flops: (n as u64) * (n as u64) * (nrhs as u64),
        ref_secs,
        blk_secs,
    });
}

fn bench_potrf(records: &mut Vec<Record>, n: usize) {
    let a0 = test_spd(n, 6);
    let mut a = a0.clone();
    let mut pack = PackBuffer::new();
    let blk_secs = time_secs(|| {
        a.as_mut_slice().copy_from_slice(a0.as_slice());
        chol::potrf_with(&mut pack, &mut a).unwrap();
    });
    let ref_secs = time_secs(|| {
        a.as_mut_slice().copy_from_slice(a0.as_slice());
        chol::potrf_reference(&mut a).unwrap();
    });
    records.push(Record {
        kernel: "potrf",
        tier: active_tier_name(),
        shape: format!("{n}x{n}"),
        flops: chol::potrf_flops(n),
        ref_secs,
        blk_secs,
    });
}

/// Approximate flop count of one BTA Cholesky factorization (level-3 terms
/// only; the `a × b` arrow work is negligible for `a ≪ b`).
fn pobtaf_flops(nt: usize, b: usize) -> u64 {
    let b3 = (b as u64).pow(3);
    // potrf on every diagonal block + trsm and syrk per off-diagonal column.
    nt as u64 * b3 / 3 + 2 * (nt as u64 - 1) * b3
}

/// Warm-session `pobtaf` at the SA1 solver shape: the "reference" lane runs
/// the previous defaults (best pre-AVX-512 tier, default blocking, no panel
/// reuse); the "blocked" lane runs the tuned configuration with
/// cross-factorization packing reuse, invalidating the panel cache between
/// iterations exactly as the solver's assemble path does per θ.
fn bench_pobtaf_warm(
    records: &mut Vec<Record>,
    tuned: &[(KernelTier, BlockConfig, f64)],
) {
    let (nt, b, a) = (24usize, 320usize, 3usize);
    let m = test_matrix(nt, b, a, 11);

    let time_session = |reuse: bool| {
        let mut pack = PackBuffer::new();
        pack.enable_panel_reuse(reuse);
        let mut store = None;
        time_secs(|| {
            // New θ: values rewritten, session panels invalid.
            pack.invalidate_panels();
            let f = pobtaf_with(&m, store.take(), &mut pack).expect("SPD bench matrix");
            store = Some(f.blocks);
        })
    };

    // Baseline: what PR 9 shipped — AVX2 (or portable) dispatch, the
    // pre-autotuner default blocking, pack-per-call.
    let base_tier = if KernelTier::Avx2.is_supported() {
        KernelTier::Avx2
    } else {
        KernelTier::Portable
    };
    blas::set_kernel_tier(base_tier);
    let d = tune::default_config(base_tier);
    dalia_la::set_blocking(d.mc, d.kc, d.nc);
    let ref_secs = time_session(false);

    // Tuned: best supported tier with its swept blocking and panel reuse on.
    let best = *dalia_la::supported_kernel_tiers().last().unwrap();
    blas::set_kernel_tier(best);
    let cfg = tuned
        .iter()
        .find(|(t, _, _)| *t == best)
        .map(|(_, c, _)| *c)
        .unwrap_or_else(|| tune::default_config(best));
    dalia_la::set_blocking(cfg.mc, cfg.kc, cfg.nc);
    let blk_secs = time_session(true);

    records.push(Record {
        kernel: "pobtaf_warm",
        tier: best.name(),
        shape: format!("b={b} a={a} nt={nt}"),
        flops: pobtaf_flops(nt, b),
        ref_secs,
        blk_secs,
    });
}

fn main() {
    // Sweep the blocking grid for every supported tier and persist the
    // winners; the library picks the cache up on the next cold start.
    let tuned = tune::autotune_and_persist();
    for (tier, cfg, gflops) in &tuned {
        println!(
            "autotune: {:<8} -> mc={} kc={} nc={} ({:.2} GF/s at 512^3)",
            tier.name(),
            cfg.mc,
            cfg.kc,
            cfg.nc,
            gflops
        );
    }
    println!("autotune cache: {}\n", tune::cache_path().display());

    let mut records = Vec::new();

    // The dispatch ladder: 256^3 / 512^3 gemm per supported tier, each under
    // its tuned blocking, so the per-tier step and the large-size falloff are
    // both visible in the snapshot.
    let entry_tier = dalia_la::kernel_tier();
    for tier in dalia_la::supported_kernel_tiers() {
        blas::set_kernel_tier(tier);
        let cfg = tuned
            .iter()
            .find(|(t, _, _)| *t == tier)
            .map(|(_, c, _)| *c)
            .unwrap_or_else(|| tune::default_config(tier));
        dalia_la::set_blocking(cfg.mc, cfg.kc, cfg.nc);
        for s in [256usize, 512] {
            bench_gemm(&mut records, s, s, s);
        }
    }

    // Remaining shapes on the best supported tier (the dispatch default).
    blas::set_kernel_tier(entry_tier);
    if let Some((_, cfg, _)) = tuned.iter().find(|(t, _, _)| *t == entry_tier) {
        dalia_la::set_blocking(cfg.mc, cfg.kc, cfg.nc);
    }
    for s in [64usize, 128] {
        bench_gemm(&mut records, s, s, s);
    }
    // Skinny arrow-panel shapes: C_i (a x b) updated against b x b blocks.
    bench_gemm(&mut records, 16, 256, 256);
    bench_gemm(&mut records, 256, 256, 16);
    // The other BTA kernels at a representative block size.
    bench_syrk(&mut records, 256, 256);
    bench_syrk(&mut records, 512, 512);
    bench_trsm(&mut records, 256, 256);
    bench_trsm(&mut records, 512, 512);
    bench_potrf(&mut records, 256);
    bench_potrf(&mut records, 512);

    // End-to-end warm factorization (mutates tier/blocking; keep it last).
    bench_pobtaf_warm(&mut records, &tuned);

    println!(
        "{:<14} {:<9} {:<16} {:>12} {:>12} {:>9}",
        "kernel", "tier", "shape", "ref GF/s", "blocked GF/s", "speedup"
    );
    for r in &records {
        println!(
            "{:<14} {:<9} {:<16} {:>12.2} {:>12.2} {:>8.2}x",
            r.kernel,
            r.tier,
            r.shape,
            r.ref_gflops(),
            r.blk_gflops(),
            r.speedup()
        );
    }

    // JSON snapshot at the repository root.
    let mut json = String::from("{\n  \"generated_by\": \"cargo bench -p dalia-bench --bench kernel_bench\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"tier\": \"{}\", \"shape\": \"{}\", \"flops\": {}, \"reference_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.tier,
            r.shape,
            r.flops,
            r.ref_gflops(),
            r.blk_gflops(),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");

    if std::env::var_os("DALIA_BENCH_NO_ASSERT").is_some() {
        return;
    }

    // Acceptance gates, on the best supported tier's records. Overridable
    // for noisy environments via DALIA_BENCH_NO_ASSERT=1.
    let best_name = entry_tier.name();
    let gemm_at = |shape: &str| {
        records
            .iter()
            .find(|r| r.kernel == "gemm" && r.tier == best_name && r.shape == shape)
            .unwrap_or_else(|| panic!("missing gemm record {shape} on tier {best_name}"))
    };
    let g256 = gemm_at("256x256x256");
    let g512 = gemm_at("512x512x512");

    // Raised floor (was 3x before the AVX-512 tier landed).
    assert!(
        g256.speedup() >= 4.0,
        "blocked gemm at 256^3 is only {:.2}x the reference (need >= 4x)",
        g256.speedup()
    );
    // The 512^3 falloff gate: with the tuned blocking, the large size must
    // retain most of the 256^3 rate instead of halving as it did untuned.
    assert!(
        g512.blk_gflops() >= 0.7 * g256.blk_gflops(),
        "512^3 gemm fell to {:.2} GF/s vs {:.2} at 256^3 (need >= 70%)",
        g512.blk_gflops(),
        g256.blk_gflops()
    );
    // End-to-end warm factorization win over the PR 9 configuration.
    let pobtaf = records
        .iter()
        .find(|r| r.kernel == "pobtaf_warm")
        .expect("pobtaf_warm record");
    assert!(
        pobtaf.speedup() >= 1.15,
        "warm pobtaf is only {:.2}x the previous defaults (need >= 1.15x)",
        pobtaf.speedup()
    );
}
