//! Achieved-GFLOP/s comparison of the blocked, packed level-3 kernels in
//! `dalia_la` against the retained naive reference kernels, across the block
//! shapes the BTA solver actually produces (square diagonal blocks of
//! `b = n_v·n_s` lanes, skinny `a × b` arrow panels).
//!
//! Running this bench (`cargo bench -p dalia-bench --bench kernel_bench`)
//! prints a table and rewrites `BENCH_kernels.json` at the repository root so
//! the kernel performance trajectory is tracked in-repo. CI uploads the file
//! as a workflow artifact. See `docs/performance.md` for how to read the
//! numbers.

use dalia_la::blas::{self, reference, PackBuffer, Side, Trans, Triangle};
use dalia_la::{chol, Matrix};
use std::time::Instant;

/// Deterministic dense test matrix with entries in [-1, 1].
fn test_mat(m: usize, n: usize, seed: usize) -> Matrix {
    Matrix::from_fn(m, n, |i, j| {
        let v = (i * 31 + j * 17 + seed * 7) % 23;
        (v as f64) / 11.5 - 1.0
    })
}

/// Well-conditioned lower-triangular matrix.
fn test_lower(n: usize, seed: usize) -> Matrix {
    let mut l = test_mat(n, n, seed);
    for j in 0..n {
        for i in 0..j {
            l[(i, j)] = 0.0;
        }
        l[(j, j)] = 2.0 + l[(j, j)].abs();
    }
    l
}

/// Deterministic SPD matrix (diagonally dominant).
fn test_spd(n: usize, seed: usize) -> Matrix {
    let mut a = test_mat(n, n, seed);
    a.symmetrize();
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Seconds per call: best of three timed batches, each batch long enough to
/// be clock-resolution safe.
fn time_secs(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    let mut reps = 1usize;
    for _ in 0..3 {
        loop {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt < 0.03 {
                reps *= 2;
                continue;
            }
            best = best.min(dt / reps as f64);
            break;
        }
    }
    best
}

struct Record {
    kernel: &'static str,
    shape: String,
    flops: u64,
    ref_secs: f64,
    blk_secs: f64,
}

impl Record {
    fn ref_gflops(&self) -> f64 {
        self.flops as f64 / self.ref_secs / 1e9
    }
    fn blk_gflops(&self) -> f64 {
        self.flops as f64 / self.blk_secs / 1e9
    }
    fn speedup(&self) -> f64 {
        self.ref_secs / self.blk_secs
    }
}

fn bench_gemm(records: &mut Vec<Record>, m: usize, k: usize, n: usize) {
    let a = test_mat(m, k, 1);
    let b = test_mat(k, n, 2);
    let mut c = Matrix::zeros(m, n);
    let mut pack = PackBuffer::new();
    let blk_secs = time_secs(|| {
        blas::gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c)
    });
    let ref_secs = time_secs(|| reference::gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c));
    records.push(Record {
        kernel: "gemm",
        shape: format!("{m}x{k}x{n}"),
        flops: blas::gemm_flops(m, k, n),
        ref_secs,
        blk_secs,
    });
}

fn bench_syrk(records: &mut Vec<Record>, n: usize, k: usize) {
    let a = test_mat(n, k, 3);
    let mut c = Matrix::zeros(n, n);
    let mut pack = PackBuffer::new();
    let blk_secs = time_secs(|| blas::syrk_lower_with(&mut pack, Trans::No, 1.0, &a, 0.0, &mut c));
    let ref_secs = time_secs(|| reference::syrk_lower(Trans::No, 1.0, &a, 0.0, &mut c));
    records.push(Record {
        kernel: "syrk_lower",
        shape: format!("{n}x{n} k={k}"),
        flops: blas::gemm_flops(n, k, n) / 2,
        ref_secs,
        blk_secs,
    });
}

fn bench_trsm(records: &mut Vec<Record>, n: usize, nrhs: usize) {
    let l = test_lower(n, 4);
    let b0 = test_mat(nrhs, n, 5);
    let mut b = b0.clone();
    let mut pack = PackBuffer::new();
    // The factorization hot path: B := B L^{-T}.
    let blk_secs = time_secs(|| {
        b.as_mut_slice().copy_from_slice(b0.as_slice());
        blas::trsm_with(&mut pack, Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b)
    });
    let ref_secs = time_secs(|| {
        b.as_mut_slice().copy_from_slice(b0.as_slice());
        reference::trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b)
    });
    records.push(Record {
        kernel: "trsm_right_lt",
        shape: format!("n={n} rhs={nrhs}"),
        flops: (n as u64) * (n as u64) * (nrhs as u64),
        ref_secs,
        blk_secs,
    });
}

fn bench_potrf(records: &mut Vec<Record>, n: usize) {
    let a0 = test_spd(n, 6);
    let mut a = a0.clone();
    let mut pack = PackBuffer::new();
    let blk_secs = time_secs(|| {
        a.as_mut_slice().copy_from_slice(a0.as_slice());
        chol::potrf_with(&mut pack, &mut a).unwrap();
    });
    let ref_secs = time_secs(|| {
        a.as_mut_slice().copy_from_slice(a0.as_slice());
        chol::potrf_reference(&mut a).unwrap();
    });
    records.push(Record {
        kernel: "potrf",
        shape: format!("{n}x{n}"),
        flops: chol::potrf_flops(n),
        ref_secs,
        blk_secs,
    });
}

fn main() {
    let mut records = Vec::new();

    // Square diagonal-block shapes (b = n_v * n_s lanes).
    for s in [64usize, 128, 256, 512] {
        bench_gemm(&mut records, s, s, s);
    }
    // Skinny arrow-panel shapes: C_i (a x b) updated against b x b blocks.
    bench_gemm(&mut records, 16, 256, 256);
    bench_gemm(&mut records, 256, 256, 16);
    // The other BTA kernels at a representative block size.
    bench_syrk(&mut records, 256, 256);
    bench_syrk(&mut records, 512, 512);
    bench_trsm(&mut records, 256, 256);
    bench_trsm(&mut records, 512, 512);
    bench_potrf(&mut records, 256);
    bench_potrf(&mut records, 512);

    println!(
        "{:<14} {:<14} {:>12} {:>12} {:>9}",
        "kernel", "shape", "ref GF/s", "blocked GF/s", "speedup"
    );
    for r in &records {
        println!(
            "{:<14} {:<14} {:>12.2} {:>12.2} {:>8.2}x",
            r.kernel,
            r.shape,
            r.ref_gflops(),
            r.blk_gflops(),
            r.speedup()
        );
    }

    // JSON snapshot at the repository root.
    let mut json = String::from("{\n  \"generated_by\": \"cargo bench -p dalia-bench --bench kernel_bench\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"flops\": {}, \"reference_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.shape,
            r.flops,
            r.ref_gflops(),
            r.blk_gflops(),
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");

    // The tentpole acceptance gate: >= 3x single-thread speedup over the
    // reference gemm at 256^3. Overridable for noisy environments.
    let g256 = records
        .iter()
        .find(|r| r.kernel == "gemm" && r.shape == "256x256x256")
        .expect("256^3 gemm record");
    if std::env::var_os("DALIA_BENCH_NO_ASSERT").is_none() {
        assert!(
            g256.speedup() >= 3.0,
            "blocked gemm at 256^3 is only {:.2}x the reference (need >= 3x)",
            g256.speedup()
        );
    }
}
