//! Ablation of Sec. IV-F: the O(nnz) sparse-to-block-dense mapping used to
//! fill the solver workspace versus a naive O(n·b²) dense per-block extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use dalia_bench::build_instance;
use dalia_data::sa1;
use dalia_la::Matrix;
use dalia_model::ModelHyper;
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let inst = build_instance(&sa1(), 30, 4, 7);
    let hyper = ModelHyper::from_theta(inst.model.dims.nv, &inst.theta0);
    let qc = inst.model.assemble_qc_csr(&hyper, true);
    let d = inst.model.dims;
    let b = d.block_size();

    let mut group = c.benchmark_group("sparse_to_dense_mapping");
    group.sample_size(10);
    // O(nnz): visit stored entries only.
    group.bench_function("o_nnz_mapping", |bencher| {
        bencher.iter(|| {
            let mut total = 0.0;
            for t in 0..d.nt {
                let mut block = Matrix::zeros(b, b);
                qc.add_dense_block_into(t * b, t * b, 1.0, &mut block, 0, 0);
                total += block[(0, 0)];
            }
            black_box(total)
        });
    });
    // O(n·b²): materialize every dense block entry through indexed lookups.
    group.bench_function("o_nb2_extraction", |bencher| {
        bencher.iter(|| {
            let mut total = 0.0;
            for t in 0..d.nt {
                let block = qc.dense_block(t * b, t * b, b, b);
                total += block[(0, 0)];
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
