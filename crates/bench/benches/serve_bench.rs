//! Serving benchmark of `dalia-serve`: batched read-only posterior queries
//! against one frozen `PosteriorSnapshot`.
//!
//! Three measurements:
//!
//! 1. **Snapshot vs session single-query latency**: the legacy fit-time
//!    prediction path (`dalia_core::predict`, which re-resolves the design
//!    every call) against `PosteriorSnapshot::predict` answering the same
//!    query read-only.
//! 2. **Throughput / latency grid**: queries-per-second and p50/p95/p99
//!    client-observed latency for every combination of client count
//!    {1, 2, 4, 8} × batching window {0, 200 µs, 1 ms}, each client issuing
//!    exact-variance predictions (the expensive mode: one blocked multi-RHS
//!    solve per request) back-to-back against a 4-worker `InlaService`.
//! 3. **The acceptance gate**: batched serving (8 clients, 200 µs window,
//!    4 workers) must reach **≥ 2× the throughput of one-query-at-a-time
//!    serving** (1 client, zero window). Skipped on hosts with fewer than
//!    4 cores or when `DALIA_BENCH_NO_ASSERT` is set.
//!
//! Running this bench (`cargo bench -p dalia-bench --bench serve_bench`)
//! prints the tables and rewrites `BENCH_serve.json` at the repository root;
//! CI regenerates the file and uploads it as an artifact on every run.

use dalia_core::{predict as session_predict, InlaEngine, InlaSettings, VarianceMode};
use dalia_mesh::{Domain, Point, TriangleMesh};
use dalia_model::{CoregionalModel, ModelHyper, Observation, PredictionTarget};
use dalia_serve::{InlaService, ServeConfig};
use std::time::{Duration, Instant};

/// Mesh resolution (structured unit-square grid) and time slices; latent
/// dimension is `(cells+1)² · nt + 1`, big enough that an exact-variance
/// request is real solver work rather than queueing noise.
const MESH_CELLS: usize = 9;
const NT: usize = 8;
/// Targets per request: one request = one design application + one blocked
/// `nt·b × K` multi-RHS solve.
const TARGETS_PER_REQUEST: usize = 32;
/// Requests each client issues back-to-back in a scenario.
const REQUESTS_PER_CLIENT: usize = 30;
/// Worker threads of the service's execution pool in every scenario (the
/// gate is defined at 4 threads).
const WORKERS: usize = 4;

fn toy_model() -> (std::sync::Arc<CoregionalModel>, Vec<f64>) {
    let mesh = TriangleMesh::structured(Domain::unit_square(), MESH_CELLS, MESH_CELLS);
    let mut obs = Vec::new();
    for t in 0..NT {
        for i in 0..6 {
            for j in 0..6 {
                let (x, y) = (0.08 + 0.14 * i as f64, 0.09 + 0.14 * j as f64);
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: (x - y) * 0.4 + 0.05 * t as f64 + 0.01 * ((i * 7 + j) % 5) as f64,
                });
            }
        }
    }
    let model = std::sync::Arc::new(CoregionalModel::new(&mesh, NT, 1.0, 1, 1, obs).expect("bench model"));
    let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
    (model, theta0)
}

/// Deterministic in-domain targets, distinct per (client, request).
fn targets_for(client: usize, request: usize) -> Vec<PredictionTarget> {
    (0..TARGETS_PER_REQUEST)
        .map(|i| {
            let k = client * 641 + request * 97 + i * 13;
            PredictionTarget {
                var: 0,
                t: k % NT,
                loc: Point::new(
                    0.04 + 0.9 * (((k * 5) % 101) as f64 / 101.0),
                    0.04 + 0.9 * (((k * 17) % 103) as f64 / 103.0),
                ),
                covariates: vec![1.0],
            }
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 * p / 100.0) as usize).min(sorted_us.len() - 1);
    sorted_us[idx]
}

struct Scenario {
    clients: usize,
    window: Duration,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_batch: f64,
    largest_batch: usize,
}

/// Run one serving scenario: `clients` threads each issuing
/// `REQUESTS_PER_CLIENT` exact-variance predictions back-to-back.
fn run_scenario(service: &InlaService, clients: usize, window: Duration) -> Scenario {
    let t0 = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                s.spawn(move || {
                    (0..REQUESTS_PER_CLIENT)
                        .map(|r| {
                            let targets = targets_for(client, r);
                            let q0 = Instant::now();
                            let served = service
                                .predict(&targets, VarianceMode::Exact)
                                .expect("bench predict");
                            std::hint::black_box(served.value.mean[0]);
                            q0.elapsed().as_secs_f64() * 1e6
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("bench client panicked")).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = service.stats();
    Scenario {
        clients,
        window,
        qps: latencies_us.len() as f64 / wall,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        mean_batch: stats.mean_batch(),
        largest_batch: stats.largest_batch,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let enforce_gate = std::env::var_os("DALIA_BENCH_NO_ASSERT").is_none() && cores >= 4;

    let (model, theta0) = toy_model();
    let session = InlaEngine::builder(&model)
        .settings(InlaSettings::dalia(1))
        .max_iter(2)
        .build()
        .expect("bench session");
    let result = session.run(&theta0).expect("bench fit");
    let snapshot = session.snapshot(&result).expect("bench snapshot");
    let latent_dim = snapshot.latent_dim();

    // 1. Snapshot vs session single-query latency (diagonal mode on both
    // sides — the only mode the legacy path supports).
    let warm_targets = targets_for(0, 0);
    let single = |mut f: Box<dyn FnMut() -> f64 + '_>| {
        let _ = f(); // warmup
        let reps = 50;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        t0.elapsed().as_secs_f64() * 1e6 / reps as f64
    };
    let session_us = single(Box::new(|| {
        session_predict(&model, snapshot.hyper_mode(), snapshot.latent(), &warm_targets)
            .expect("session predict")
            .mean[0]
    }));
    let snapshot_us = single(Box::new(|| {
        snapshot.predict(&warm_targets).expect("snapshot predict").mean[0]
    }));
    println!(
        "single-query latency ({TARGETS_PER_REQUEST} targets, diagonal): \
         session path {session_us:.1} µs, snapshot path {snapshot_us:.1} µs"
    );

    // 2. Throughput / latency grid. A fresh service per scenario so the
    // batch statistics are per-scenario.
    let windows =
        [Duration::ZERO, Duration::from_micros(200), Duration::from_millis(1)];
    let client_counts = [1usize, 2, 4, 8];
    let mut scenarios = Vec::new();
    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>8}",
        "clients", "window_us", "qps", "p50_us", "p95_us", "p99_us", "mean_batch", "max_b"
    );
    for &window in &windows {
        for &clients in &client_counts {
            let service = InlaService::new(
                session.snapshot(&result).expect("bench snapshot"),
                ServeConfig { max_batch: 32, batch_window: window, workers: WORKERS },
            )
            .expect("valid serve config");
            let s = run_scenario(&service, clients, window);
            println!(
                "{:<8} {:>10.0} {:>10.0} {:>10.1} {:>10.1} {:>10.1} {:>11.2} {:>8}",
                s.clients,
                window.as_secs_f64() * 1e6,
                s.qps,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.mean_batch,
                s.largest_batch
            );
            scenarios.push(s);
        }
    }

    // 3. The gate quantities: one-query-at-a-time serving (1 client, zero
    // window) vs batched serving (8 clients, 200 µs window).
    let serial_qps = scenarios
        .iter()
        .find(|s| s.clients == 1 && s.window == Duration::ZERO)
        .expect("missing serial scenario")
        .qps;
    let batched_qps = scenarios
        .iter()
        .filter(|s| s.clients == 8 && s.window > Duration::ZERO)
        .map(|s| s.qps)
        .fold(0.0f64, f64::max);
    let speedup = batched_qps / serial_qps;
    println!(
        "\nbatched serving throughput: {batched_qps:.0} qps vs one-at-a-time {serial_qps:.0} qps \
         ({speedup:.2}x at {WORKERS} workers)"
    );

    // JSON snapshot at the repository root.
    let mut json =
        String::from("{\n  \"generated_by\": \"cargo bench -p dalia-bench --bench serve_bench\",\n");
    json.push_str(&format!(
        "  \"host_cores\": {cores},\n  \"latent_dim\": {latent_dim},\n  \
         \"targets_per_request\": {TARGETS_PER_REQUEST},\n  \
         \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \"workers\": {WORKERS},\n  \
         \"note\": \"exact-variance predictions against one frozen PosteriorSnapshot; the \
         >=2x acceptance gate compares the best batched 8-client record against the \
         1-client zero-window record on a >=4-core host (CI regenerates and uploads this \
         file as the serve-bench artifact on every run)\",\n"
    ));
    json.push_str(&format!(
        "  \"single_query\": {{\"session_path_us\": {session_us:.1}, \
         \"snapshot_path_us\": {snapshot_us:.1}, \"mode\": \"diagonal\", \
         \"note\": \"legacy dalia_core::predict re-resolves the design every call; the \
         snapshot path serves the same query read-only\"}},\n  \"scenarios\": [\n"
    ));
    for (i, s) in scenarios.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"window_us\": {:.0}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
             \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_batch\": {:.2}, \"largest_batch\": {}}}{}\n",
            s.clients,
            s.window.as_secs_f64() * 1e6,
            s.qps,
            s.p50_us,
            s.p95_us,
            s.p99_us,
            s.mean_batch,
            s.largest_batch,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"gate\": {{\"serial_qps\": {serial_qps:.1}, \"batched_qps\": {batched_qps:.1}, \
         \"speedup\": {speedup:.2}, \"threshold\": 2.0}}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    // Acceptance gate.
    if enforce_gate {
        assert!(
            speedup >= 2.0,
            "batched serving at {WORKERS} workers is only {speedup:.2}x one-query-at-a-time \
             throughput (need >= 2x)"
        );
        println!("gate: batched {speedup:.2}x >= 2x one-at-a-time serving — OK");
    } else {
        println!(
            "gate: skipped (cores = {cores}, DALIA_BENCH_NO_ASSERT = {})",
            std::env::var_os("DALIA_BENCH_NO_ASSERT").is_some()
        );
    }
}
