//! Scaling comparison of the work-stealing pool (`dalia_hpc::pool`, driving
//! the `rayon` shim's `par_iter`) against the retired **eager fixed-chunk**
//! strategy (contiguous chunks, one scoped OS thread each — the pre-PR-4
//! shim), on the workload shapes the S1/S3 fan-outs actually produce:
//!
//! * **imbalanced** — a heavy head of expensive items followed by many cheap
//!   ones (the S3 load-imbalance shape: a fixed-chunk split hands the whole
//!   heavy head to one thread, stealing spreads it);
//! * **uniform** — equal-cost items (the shape the old shim was tuned for,
//!   kept as the no-regression reference).
//!
//! Running this bench (`cargo bench -p dalia-bench --bench pool_bench`)
//! prints a table and rewrites `BENCH_pool.json` at the repository root. CI
//! runs it at 1/2/4 threads, uploads the JSON as an artifact, and the bench
//! itself asserts the tentpole acceptance gate: **≥ 1.6× speedup at 4
//! threads on the imbalanced workload** over the eager chunked strategy
//! (skipped when fewer than 4 cores are available or
//! `DALIA_BENCH_NO_ASSERT` is set).

use dalia_hpc::pool::ThreadPool;
use rayon::prelude::*;
use std::time::Instant;

/// One spin unit: enough deterministic flops to be scheduling-visible
/// (~100 µs) without making the bench slow.
const UNIT_ITERS: u64 = 60_000;

/// Spin for `units` of deterministic, non-elidable floating-point work.
fn busy(units: u64) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..units * UNIT_ITERS {
        acc += 1.0 / ((i % 1024) as f64 + 2.0);
    }
    std::hint::black_box(acc)
}

/// Imbalanced workload: a contiguous heavy head (8 items × 24 units) then a
/// cheap tail (56 items × 1 unit). A fixed 4-chunk split gives chunk 0 about
/// 200 of the 248 total units.
fn imbalanced_workload() -> Vec<u64> {
    let mut w = vec![24u64; 8];
    w.extend(std::iter::repeat_n(1u64, 56));
    w
}

/// Uniform workload: 64 items × 3 units.
fn uniform_workload() -> Vec<u64> {
    vec![3u64; 64]
}

/// The retired strategy: split into contiguous fixed chunks, one scoped OS
/// thread per chunk (exactly what the pre-PR-4 rayon shim did).
fn eager_chunked_map(items: &[u64], threads: usize) -> f64 {
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(|&c| busy(c)).sum();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut total = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(|&c| busy(c)).sum::<f64>()))
            .collect();
        for h in handles {
            total += h.join().expect("chunk worker panicked");
        }
    });
    total
}

/// The work-stealing strategy: `par_iter` on a pool pinned to `t` threads.
fn pool_map(pool: &ThreadPool, items: &[u64]) -> f64 {
    pool.install(|| items.par_iter().map(|&c| busy(c)).sum::<f64>())
}

/// Best-of-3 wall-clock seconds.
fn time_secs(mut f: impl FnMut() -> f64) -> f64 {
    let _ = f(); // warmup
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Record {
    workload: &'static str,
    threads: usize,
    chunked_secs: f64,
    pool_secs: f64,
}

impl Record {
    /// Pool speedup over the eager chunked strategy at the same thread count.
    fn speedup(&self) -> f64 {
        self.chunked_secs / self.pool_secs
    }
}

fn main() {
    let workloads: [(&'static str, Vec<u64>); 2] =
        [("imbalanced", imbalanced_workload()), ("uniform", uniform_workload())];
    let thread_counts = [1usize, 2, 4];

    let mut records = Vec::new();
    for (name, items) in &workloads {
        for &t in &thread_counts {
            let pool = ThreadPool::new(t);
            let pool_secs = time_secs(|| pool_map(&pool, items));
            let chunked_secs = time_secs(|| eager_chunked_map(items, t));
            records.push(Record { workload: name, threads: t, chunked_secs, pool_secs });
        }
    }

    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>9}",
        "workload", "threads", "chunked (s)", "pool (s)", "speedup"
    );
    for r in &records {
        println!(
            "{:<12} {:>8} {:>14.4} {:>14.4} {:>8.2}x",
            r.workload,
            r.threads,
            r.chunked_secs,
            r.pool_secs,
            r.speedup()
        );
    }

    // Self-scaling of the pool (imbalanced workload, pool_1 / pool_t).
    let pool_time = |t: usize| {
        records
            .iter()
            .find(|r| r.workload == "imbalanced" && r.threads == t)
            .map(|r| r.pool_secs)
            .expect("missing record")
    };
    println!(
        "\npool self-scaling (imbalanced): 2T {:.2}x, 4T {:.2}x",
        pool_time(1) / pool_time(2),
        pool_time(1) / pool_time(4)
    );

    // JSON snapshot at the repository root. The host core count is recorded
    // because the speedups are only meaningful relative to it (a 1-core
    // container can show ~1.0x regardless of strategy).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from(
        "{\n  \"generated_by\": \"cargo bench -p dalia-bench --bench pool_bench\",\n",
    );
    json.push_str(&format!(
        "  \"host_cores\": {cores},\n  \"note\": \"speedups at T threads are only \
         meaningful when host_cores >= T; the >=1.6x acceptance gate applies to the \
         4-thread imbalanced record on a >=4-core host (CI regenerates and uploads \
         this file as the pool-bench artifact on every run)\",\n  \"records\": [\n"
    ));
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"eager_chunked_seconds\": {:.6}, \"pool_seconds\": {:.6}, \"speedup_vs_chunked\": {:.3}}}{}\n",
            r.workload,
            r.threads,
            r.chunked_secs,
            r.pool_secs,
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"pool_self_scaling_imbalanced\": {{\"x2\": {:.3}, \"x4\": {:.3}}}\n}}\n",
        pool_time(1) / pool_time(2),
        pool_time(1) / pool_time(4)
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    std::fs::write(path, json).expect("write BENCH_pool.json");
    println!("\nwrote {path}");

    // The tentpole acceptance gate: >= 1.6x over the eager chunked strategy
    // at 4 threads on the imbalanced workload. Only meaningful with >= 4
    // real cores; overridable for constrained environments.
    let gate = records
        .iter()
        .find(|r| r.workload == "imbalanced" && r.threads == 4)
        .expect("missing 4-thread imbalanced record");
    if std::env::var_os("DALIA_BENCH_NO_ASSERT").is_none() && cores >= 4 {
        assert!(
            gate.speedup() >= 1.6,
            "work-stealing pool at 4 threads is only {:.2}x the eager chunked map on the \
             imbalanced workload (need >= 1.6x)",
            gate.speedup()
        );
        println!(
            "gate: pool {:.2}x >= 1.6x over eager chunked at 4 threads (imbalanced) — OK",
            gate.speedup()
        );
    } else {
        println!(
            "gate: skipped (cores = {cores}, DALIA_BENCH_NO_ASSERT = {})",
            std::env::var_os("DALIA_BENCH_NO_ASSERT").is_some()
        );
    }
}
