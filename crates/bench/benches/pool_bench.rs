//! Scaling benches of the work-stealing pool (`dalia_hpc::pool`):
//!
//! 1. **Synthetic map workloads** against the retired **eager fixed-chunk**
//!    strategy (contiguous chunks, one scoped OS thread each — the pre-PR-4
//!    shim): an **imbalanced** heavy-head shape (the S3 load-imbalance
//!    pattern) and a **uniform** no-regression reference.
//! 2. **Skewed-partition S3 pass** (`d_pobtaf` + `d_pobtas` + `d_pobtasi`):
//!    a 1-big/N-tiny time-domain layout processed with stealable interiors
//!    (`InteriorSchedule::Stealable`, the default) versus the indivisible
//!    pre-split baseline, for each stage separately and for the combined
//!    factorize + solve + selected-inverse pass. Without interior splitting
//!    the single huge partition serializes the whole fan-out to 1-thread
//!    throughput no matter how many workers exist.
//! 3. **Idle-pool wake latency**: submit a no-op to a fully parked pool and
//!    time until it runs — the metric the event-parking protocol (condvar
//!    `Parker` + targeted wakes) improves over the retired 500 µs timed
//!    `recv` poll.
//!
//! Running this bench (`cargo bench -p dalia-bench --bench pool_bench`)
//! prints tables and rewrites `BENCH_pool.json` at the repository root. CI
//! runs it at 1/2/4 threads, uploads the JSON as an artifact, and the bench
//! itself asserts the acceptance gates: **≥ 1.6× at 4 threads on the
//! imbalanced workload** over eager chunking, **≥ 1.5× at 4 threads for
//! stealable over indivisible `d_pobtaf` interiors on the skewed layout**,
//! and **≥ 1.4× at 4 threads for the combined factor + solve + selinv S3
//! pass** (all skipped when fewer than 4 cores are available or
//! `DALIA_BENCH_NO_ASSERT` is set).

use dalia_hpc::pool::ThreadPool;
use rayon::prelude::*;
use serinv::testing::{test_matrix, test_rhs};
use serinv::{
    d_pobtaf_scheduled, d_pobtas_scheduled, d_pobtasi_scheduled, InteriorSchedule, Partitioning,
};
use std::time::Instant;

/// One spin unit: enough deterministic flops to be scheduling-visible
/// (~100 µs) without making the bench slow.
const UNIT_ITERS: u64 = 60_000;

/// Spin for `units` of deterministic, non-elidable floating-point work.
fn busy(units: u64) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..units * UNIT_ITERS {
        acc += 1.0 / ((i % 1024) as f64 + 2.0);
    }
    std::hint::black_box(acc)
}

/// Imbalanced workload: a contiguous heavy head (8 items × 24 units) then a
/// cheap tail (56 items × 1 unit). A fixed 4-chunk split gives chunk 0 about
/// 200 of the 248 total units.
fn imbalanced_workload() -> Vec<u64> {
    let mut w = vec![24u64; 8];
    w.extend(std::iter::repeat_n(1u64, 56));
    w
}

/// Uniform workload: 64 items × 3 units.
fn uniform_workload() -> Vec<u64> {
    vec![3u64; 64]
}

/// The retired strategy: split into contiguous fixed chunks, one scoped OS
/// thread per chunk (exactly what the pre-PR-4 rayon shim did).
fn eager_chunked_map(items: &[u64], threads: usize) -> f64 {
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(|&c| busy(c)).sum();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut total = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(|&c| busy(c)).sum::<f64>()))
            .collect();
        for h in handles {
            total += h.join().expect("chunk worker panicked");
        }
    });
    total
}

/// The work-stealing strategy: `par_iter` on a pool pinned to `t` threads.
fn pool_map(pool: &ThreadPool, items: &[u64]) -> f64 {
    pool.install(|| items.par_iter().map(|&c| busy(c)).sum::<f64>())
}

/// Best-of-3 wall-clock seconds.
fn time_secs(mut f: impl FnMut() -> f64) -> f64 {
    let _ = f(); // warmup
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let _ = std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Record {
    workload: &'static str,
    threads: usize,
    chunked_secs: f64,
    pool_secs: f64,
}

impl Record {
    /// Pool speedup over the eager chunked strategy at the same thread count.
    fn speedup(&self) -> f64 {
        self.chunked_secs / self.pool_secs
    }
}

/// Skewed-partition scenario dimensions: one huge *interior* partition
/// holding most of the time domain next to five single-block partitions.
/// The big partition sits in the middle (not at the boundary) because
/// interior partitions carry the left-separator fill `W` — both the shape
/// the paper's load-balancing factor exists for and the shape with a
/// parallel column DAG worth stealing from. Blocks are SA1-sized so the
/// per-column kernel calls are scheduling-visible.
const SKEW_BLOCKS: usize = 27;
const SKEW_BLOCK_SIZE: usize = 96;
const SKEW_ARROW: usize = 4;
const SKEW_LAYOUT: &str = "1+22+4x1";

fn skewed_partitioning() -> Partitioning {
    Partitioning::from_sizes(&[1, SKEW_BLOCKS - 5, 1, 1, 1, 1])
}

/// Right-hand-side columns for the skewed solve stage (the multi-RHS shape
/// the INLA conditional-mean solves use).
const SKEW_RHS_COLS: usize = 8;

/// Per-stage timings of the skewed S3 pass under both interior schedules.
struct SkewRecord {
    threads: usize,
    factor_indivisible_secs: f64,
    factor_stealable_secs: f64,
    solve_indivisible_secs: f64,
    solve_stealable_secs: f64,
    selinv_indivisible_secs: f64,
    selinv_stealable_secs: f64,
}

impl SkewRecord {
    /// Stealable-interior speedup over the indivisible pre-split baseline.
    fn factor_speedup(&self) -> f64 {
        self.factor_indivisible_secs / self.factor_stealable_secs
    }

    fn solve_speedup(&self) -> f64 {
        self.solve_indivisible_secs / self.solve_stealable_secs
    }

    fn selinv_speedup(&self) -> f64 {
        self.selinv_indivisible_secs / self.selinv_stealable_secs
    }

    /// Combined factorize + solve + selected-inverse pass speedup — the
    /// quantity the ≥ 1.4× S3 acceptance gate applies to.
    fn combined_speedup(&self) -> f64 {
        (self.factor_indivisible_secs + self.solve_indivisible_secs + self.selinv_indivisible_secs)
            / (self.factor_stealable_secs
                + self.solve_stealable_secs
                + self.selinv_stealable_secs)
    }
}

/// Time the full S3 pass (`d_pobtaf`, `d_pobtas`, `d_pobtasi`) on the skewed
/// layout under both interior schedules. Stage timings are ~20 ms, so one
/// background-CPU hiccup can double a single measurement; best-of-two
/// `time_secs` rounds (six timed runs per stage and schedule) keeps the
/// committed snapshot stable. Solve and selected inverse are timed against
/// the same (stealable-built, schedule-independent) factor.
fn skewed_partition_records(thread_counts: &[usize]) -> Vec<SkewRecord> {
    let m = test_matrix(SKEW_BLOCKS, SKEW_BLOCK_SIZE, SKEW_ARROW, 42);
    let part = skewed_partitioning();
    let rhs0 = test_rhs(m.dim(), SKEW_RHS_COLS);
    thread_counts
        .iter()
        .map(|&t| {
            let pool = ThreadPool::new(t);
            let best = |f: &mut dyn FnMut() -> f64| {
                (0..2).map(|_| time_secs(&mut *f)).fold(f64::INFINITY, f64::min)
            };
            let factor_best = |sched: InteriorSchedule| {
                best(&mut || {
                    pool.install(|| {
                        d_pobtaf_scheduled(&m, &part, sched)
                            .expect("skewed factorization")
                            .logdet().unwrap()
                    })
                })
            };
            let factor_stealable_secs = factor_best(InteriorSchedule::Stealable);
            let factor_indivisible_secs = factor_best(InteriorSchedule::Indivisible);

            // Both schedules produce bitwise-identical factors; reuse one.
            let factor = pool
                .install(|| d_pobtaf_scheduled(&m, &part, InteriorSchedule::Stealable))
                .expect("skewed factorization");
            let solve_best = |sched: InteriorSchedule| {
                best(&mut || {
                    let mut rhs = rhs0.clone();
                    pool.install(|| d_pobtas_scheduled(&factor, &mut rhs, sched));
                    rhs.as_slice()[0]
                })
            };
            let solve_stealable_secs = solve_best(InteriorSchedule::Stealable);
            let solve_indivisible_secs = solve_best(InteriorSchedule::Indivisible);
            let selinv_best = |sched: InteriorSchedule| {
                best(&mut || {
                    let sel = pool.install(|| d_pobtasi_scheduled(&factor, sched));
                    sel.blocks.diag[0].as_slice()[0]
                })
            };
            let selinv_stealable_secs = selinv_best(InteriorSchedule::Stealable);
            let selinv_indivisible_secs = selinv_best(InteriorSchedule::Indivisible);

            SkewRecord {
                threads: t,
                factor_indivisible_secs,
                factor_stealable_secs,
                solve_indivisible_secs,
                solve_stealable_secs,
                selinv_indivisible_secs,
                selinv_stealable_secs,
            }
        })
        .collect()
}

/// Idle-pool wake latency: let the workers park, then time a no-op from
/// submission to execution. Returns (median, p95) in microseconds.
///
/// With `enforce`, asserts that the workers actually parked (the latency
/// only measures event wakes if they did). Callers pass the same guard as
/// the acceptance gates — `DALIA_BENCH_NO_ASSERT` unset and ≥ 4 cores — an
/// oversubscribed host can keep workers from finishing their backoff scans
/// inside the 5 ms idle windows.
fn wake_latency_us(samples: usize, enforce: bool) -> (f64, f64) {
    let pool = ThreadPool::new(2);
    // Warm the pool up, then measure.
    pool.install(|| std::hint::black_box(busy(1)));
    let mut lat: Vec<f64> = (0..samples)
        .map(|_| {
            // Give the workers time to run the backoff scans and park.
            std::thread::sleep(std::time::Duration::from_millis(5));
            let t0 = Instant::now();
            pool.install(|| std::hint::black_box(()));
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = pool.wake_stats();
    if enforce {
        assert!(stats.parks as usize >= samples / 2, "workers never parked: {stats:?}");
    }
    (lat[lat.len() / 2], lat[(lat.len() * 95) / 100])
}

fn main() {
    let workloads: [(&'static str, Vec<u64>); 2] =
        [("imbalanced", imbalanced_workload()), ("uniform", uniform_workload())];
    let thread_counts = [1usize, 2, 4];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let enforce_gates = std::env::var_os("DALIA_BENCH_NO_ASSERT").is_none() && cores >= 4;

    let mut records = Vec::new();
    for (name, items) in &workloads {
        for &t in &thread_counts {
            let pool = ThreadPool::new(t);
            let pool_secs = time_secs(|| pool_map(&pool, items));
            let chunked_secs = time_secs(|| eager_chunked_map(items, t));
            records.push(Record { workload: name, threads: t, chunked_secs, pool_secs });
        }
    }

    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>9}",
        "workload", "threads", "chunked (s)", "pool (s)", "speedup"
    );
    for r in &records {
        println!(
            "{:<12} {:>8} {:>14.4} {:>14.4} {:>8.2}x",
            r.workload,
            r.threads,
            r.chunked_secs,
            r.pool_secs,
            r.speedup()
        );
    }

    // Self-scaling of the pool (imbalanced workload, pool_1 / pool_t).
    let pool_time = |t: usize| {
        records
            .iter()
            .find(|r| r.workload == "imbalanced" && r.threads == t)
            .map(|r| r.pool_secs)
            .expect("missing record")
    };
    println!(
        "\npool self-scaling (imbalanced): 2T {:.2}x, 4T {:.2}x",
        pool_time(1) / pool_time(2),
        pool_time(1) / pool_time(4)
    );

    // Skewed-partition S3 pass: stealable vs indivisible interiors, per
    // stage and combined.
    let skew = skewed_partition_records(&thread_counts);
    println!(
        "\nskewed-partition S3 pass ({SKEW_BLOCKS} blocks of b = {SKEW_BLOCK_SIZE}, layout {SKEW_LAYOUT}, \
         {SKEW_RHS_COLS} rhs):"
    );
    println!(
        "{:<8} {:<8} {:>18} {:>16} {:>9}",
        "threads", "stage", "indivisible (s)", "stealable (s)", "speedup"
    );
    for r in &skew {
        for (stage, ind, steal, sp) in [
            ("factor", r.factor_indivisible_secs, r.factor_stealable_secs, r.factor_speedup()),
            ("solve", r.solve_indivisible_secs, r.solve_stealable_secs, r.solve_speedup()),
            ("selinv", r.selinv_indivisible_secs, r.selinv_stealable_secs, r.selinv_speedup()),
        ] {
            println!("{:<8} {:<8} {:>18.4} {:>16.4} {:>8.2}x", r.threads, stage, ind, steal, sp);
        }
        println!("{:<8} {:<8} {:>35} {:>8.2}x", r.threads, "combined", "", r.combined_speedup());
    }

    // Idle-pool wake latency (event parking vs the retired 500 µs poll).
    let (wake_median_us, wake_p95_us) = wake_latency_us(64, enforce_gates);
    println!(
        "\nidle-pool wake latency: median {wake_median_us:.1} µs, p95 {wake_p95_us:.1} µs \
         (retired timed-recv poll: up to 500 µs)"
    );

    // JSON snapshot at the repository root. The host core count is recorded
    // because the speedups are only meaningful relative to it (a 1-core
    // container can show ~1.0x regardless of strategy).
    let mut json = String::from(
        "{\n  \"generated_by\": \"cargo bench -p dalia-bench --bench pool_bench\",\n",
    );
    json.push_str(&format!(
        "  \"host_cores\": {cores},\n  \"note\": \"speedups at T threads are only \
         meaningful when host_cores >= T; the >=1.6x acceptance gate applies to the \
         4-thread imbalanced record on a >=4-core host (CI regenerates and uploads \
         this file as the pool-bench artifact on every run)\",\n  \"records\": [\n"
    ));
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"eager_chunked_seconds\": {:.6}, \"pool_seconds\": {:.6}, \"speedup_vs_chunked\": {:.3}}}{}\n",
            r.workload,
            r.threads,
            r.chunked_secs,
            r.pool_secs,
            r.speedup(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"pool_self_scaling_imbalanced\": {{\"x2\": {:.3}, \"x4\": {:.3}}},\n",
        pool_time(1) / pool_time(2),
        pool_time(1) / pool_time(4)
    ));
    json.push_str(&format!(
        "  \"skewed_partition\": {{\n    \"blocks\": {SKEW_BLOCKS}, \"block_size\": {SKEW_BLOCK_SIZE}, \
         \"arrow\": {SKEW_ARROW}, \"layout\": \"{SKEW_LAYOUT}\", \"rhs_cols\": {SKEW_RHS_COLS},\n    \
         \"note\": \"full S3 pass (d_pobtaf + d_pobtas + d_pobtasi), stealable vs indivisible \
         interiors (big partition interior, so its columns carry the W fill); on a >=4-core host \
         the 4-thread record must show >=1.5x on factor and >=1.4x combined\",\n    \"records\": [\n"
    ));
    for (i, r) in skew.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"threads\": {}, \
             \"factor_indivisible_seconds\": {:.6}, \"factor_stealable_seconds\": {:.6}, \"factor_speedup\": {:.3}, \
             \"solve_indivisible_seconds\": {:.6}, \"solve_stealable_seconds\": {:.6}, \"solve_speedup\": {:.3}, \
             \"selinv_indivisible_seconds\": {:.6}, \"selinv_stealable_seconds\": {:.6}, \"selinv_speedup\": {:.3}, \
             \"combined_speedup\": {:.3}}}{}\n",
            r.threads,
            r.factor_indivisible_secs,
            r.factor_stealable_secs,
            r.factor_speedup(),
            r.solve_indivisible_secs,
            r.solve_stealable_secs,
            r.solve_speedup(),
            r.selinv_indivisible_secs,
            r.selinv_stealable_secs,
            r.selinv_speedup(),
            r.combined_speedup(),
            if i + 1 < skew.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ]\n  }},\n  \"wake_latency\": {{\"median_us\": {wake_median_us:.1}, \"p95_us\": {wake_p95_us:.1}, \
         \"samples\": 64, \"note\": \"idle-pool submit-to-execution latency; the retired v1 \
         timed-recv poll bounded this at 500us\"}}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    std::fs::write(path, json).expect("write BENCH_pool.json");
    println!("\nwrote {path}");

    // Acceptance gates, only meaningful with >= 4 real cores; overridable
    // for constrained environments.
    let gate = records
        .iter()
        .find(|r| r.workload == "imbalanced" && r.threads == 4)
        .expect("missing 4-thread imbalanced record");
    let skew_gate =
        skew.iter().find(|r| r.threads == 4).expect("missing 4-thread skewed record");
    if enforce_gates {
        // PR 4 gate: >= 1.6x over the eager chunked strategy at 4 threads on
        // the imbalanced workload.
        assert!(
            gate.speedup() >= 1.6,
            "work-stealing pool at 4 threads is only {:.2}x the eager chunked map on the \
             imbalanced workload (need >= 1.6x)",
            gate.speedup()
        );
        println!(
            "gate: pool {:.2}x >= 1.6x over eager chunked at 4 threads (imbalanced) — OK",
            gate.speedup()
        );
        // PR 5 gate: stealable interiors must keep the skewed layout from
        // degenerating to 1-thread throughput — >= 1.5x over the
        // indivisible baseline at 4 threads.
        assert!(
            skew_gate.factor_speedup() >= 1.5,
            "stealable d_pobtaf interiors at 4 threads are only {:.2}x the indivisible \
             baseline on the skewed layout (need >= 1.5x)",
            skew_gate.factor_speedup()
        );
        println!(
            "gate: stealable interiors {:.2}x >= 1.5x over indivisible at 4 threads (skewed) — OK",
            skew_gate.factor_speedup()
        );
        // PR 6 gate: the combined factorize + solve + selected-inverse S3
        // pass must profit from stealable solve/selinv interiors too —
        // >= 1.4x over the indivisible baseline at 4 threads.
        assert!(
            skew_gate.combined_speedup() >= 1.4,
            "stealable S3 pass (factor+solve+selinv) at 4 threads is only {:.2}x the \
             indivisible baseline on the skewed layout (need >= 1.4x)",
            skew_gate.combined_speedup()
        );
        println!(
            "gate: stealable S3 pass {:.2}x >= 1.4x over indivisible at 4 threads (skewed) — OK",
            skew_gate.combined_speedup()
        );
    } else {
        println!(
            "gates: skipped (cores = {cores}, DALIA_BENCH_NO_ASSERT = {})",
            std::env::var_os("DALIA_BENCH_NO_ASSERT").is_some()
        );
    }
}
