//! Ablation: the structured BTA solver against the general sparse Cholesky
//! ("PARDISO substitute") on the same conditional precision matrix — the core
//! reason DALIA outperforms R-INLA — plus the effect of the coregional
//! permutation on the general solver's fill-in.

use criterion::{criterion_group, criterion_main, Criterion};
use dalia_bench::build_instance;
use dalia_data::sa1;
use dalia_model::ModelHyper;
use dalia_sparse::SparseCholesky;
use serinv::pobtaf;
use std::hint::black_box;

fn bench_qc_factorizations(c: &mut Criterion) {
    let inst = build_instance(&sa1(), 30, 4, 5);
    let hyper = ModelHyper::from_theta(inst.model.dims.nv, &inst.theta0);
    let (qc_bta, _) = inst.model.assemble_qc_bta(&hyper);
    let qc_csr_perm = inst.model.assemble_qc_csr(&hyper, true);
    let qc_csr_nat = inst.model.assemble_qc_csr(&hyper, false);

    let mut group = c.benchmark_group("qc_factorization");
    group.sample_size(10);
    group.bench_function("bta_structured", |b| {
        b.iter(|| black_box(pobtaf(&qc_bta).unwrap()));
    });
    group.bench_function("sparse_general_permuted", |b| {
        b.iter(|| black_box(SparseCholesky::factor(&qc_csr_perm).unwrap()));
    });
    group.bench_function("sparse_general_natural", |b| {
        b.iter(|| black_box(SparseCholesky::factor(&qc_csr_nat).unwrap()));
    });
    group.finish();

    // Report the fill-in ablation once (printed alongside the criterion output).
    let f_perm = SparseCholesky::factor(&qc_csr_perm).unwrap();
    let f_nat = SparseCholesky::factor(&qc_csr_nat).unwrap();
    println!(
        "fill-in: permuted (time-major) nnz(L) = {}, natural (by-process) nnz(L) = {}",
        f_perm.nnz_factor(),
        f_nat.nnz_factor()
    );
}

criterion_group!(benches, bench_qc_factorizations);
criterion_main!(benches);
