//! Ablation of the stateful-session redesign: one objective evaluation
//! through a fresh session per call (the old `evaluate_fobj` behaviour —
//! workspaces allocated and symbolic analysis recomputed every time) versus a
//! reused `InlaSession` whose pooled solver keeps its workspaces warm.
//!
//! The per-phase breakdown printed after the criterion numbers isolates where
//! the reuse pays: assembly (pre-allocated BTA blocks) and factorization
//! (cached sparse symbolic analysis, recycled factor storage).

use criterion::{criterion_group, criterion_main, Criterion};
use dalia_bench::{build_instance, instance_session};
use dalia_core::{InlaSettings, PhaseTimers};
use dalia_data::sa1;
use std::hint::black_box;

fn bench_session_reuse(c: &mut Criterion) {
    let inst = build_instance(&sa1(), 30, 6, 5);

    for (label, settings) in [
        ("bta", InlaSettings::dalia(1)),
        ("sparse", InlaSettings::rinla_like()),
    ] {
        let mut group = c.benchmark_group(format!("objective_evaluation_{label}"));
        group.sample_size(10);
        group.bench_function("fresh_session_per_eval", |b| {
            b.iter(|| {
                let session = instance_session(&inst, settings.clone());
                black_box(session.objective(&inst.theta0).unwrap())
            });
        });
        let session = instance_session(&inst, settings.clone());
        group.bench_function("reused_session", |b| {
            b.iter(|| black_box(session.objective(&inst.theta0).unwrap()));
        });
        group.finish();

        // Phase breakdown over 20 evaluations each way.
        let reps = 20;
        let mut fresh_timers = PhaseTimers::default();
        for _ in 0..reps {
            let one_shot = instance_session(&inst, settings.clone());
            one_shot.objective(&inst.theta0).unwrap();
            fresh_timers.merge(&one_shot.timers());
        }
        let warm = instance_session(&inst, settings.clone());
        warm.objective(&inst.theta0).unwrap(); // warm-up builds the caches
        warm.reset_timers();
        for _ in 0..reps {
            warm.objective(&inst.theta0).unwrap();
        }
        let warm_timers = warm.timers();
        let per = |t: PhaseTimers| {
            (
                1e3 * t.assembly_seconds / reps as f64,
                1e3 * t.factorize_seconds / reps as f64,
                1e3 * t.solve_seconds / reps as f64,
            )
        };
        let (fa, ff, fs) = per(fresh_timers);
        let (wa, wf, ws) = per(warm_timers);
        println!("[{label}] per-evaluation phase times, fresh vs reused session (ms):");
        println!("  assembly    {fa:8.3} -> {wa:8.3}  ({:+.1}%)", 100.0 * (wa - fa) / fa);
        println!("  factorize   {ff:8.3} -> {wf:8.3}  ({:+.1}%)", 100.0 * (wf - ff) / ff);
        println!("  solve       {fs:8.3} -> {ws:8.3}  ({:+.1}%)", 100.0 * (ws - fs) / fs);
    }
}

criterion_group!(benches, bench_session_reuse);
criterion_main!(benches);
